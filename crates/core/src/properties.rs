//! Executable versions of the paper's Sec. 3 transaction properties,
//! used as oracles by the integration tests and the experiment
//! harness.
//!
//! - **Routing-layer consistency (Sec. 3.5)**: from any publisher
//!   location, the distributed PRT state must route a conforming
//!   publication to every client with an intersecting subscription.
//!   [`static_delivery_set`] computes, *without sending messages*, the
//!   set of clients the current tables would deliver a probe
//!   publication to; [`check_routing_consistency`] compares it against
//!   the expected set.
//! - **Notification atomicity (Sec. 3.4)**: [`assert_exactly_once`] —
//!   no duplicate publication ids in a client's application stream.
//! - **Client-layer consistency (Sec. 3.3)**: [`started_copies`] — at
//!   most one `Started` copy of any client across the network.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use transmob_broker::{Hop, Prt, Topology};
use transmob_pubsub::{BrokerId, ClientId, PubId, Publication, PublicationMsg};

use crate::mobile_broker::MobileBroker;
use crate::states::ClientState;

/// Read-only access to a network of brokers, so the property checkers
/// run over any driver — [`crate::InstantNet`], the discrete-event
/// simulator, or anything else hosting [`MobileBroker`]s.
pub trait NetworkView {
    /// The overlay topology.
    fn view_topology(&self) -> &Topology;
    /// Every broker id in the network.
    fn view_broker_ids(&self) -> Vec<BrokerId>;
    /// A broker by id.
    ///
    /// # Panics
    ///
    /// May panic if `id` is unknown.
    fn view_broker(&self, id: BrokerId) -> &MobileBroker;
    /// The broker currently holding any stub for `client` (whatever its
    /// state), if one exists.
    fn view_find_client(&self, client: ClientId) -> Option<BrokerId> {
        self.view_broker_ids()
            .into_iter()
            .find(|b| self.view_broker(*b).client(client).is_some())
    }
}

/// A violation reported by one of the property checkers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyViolation(pub String);

impl fmt::Display for PropertyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for PropertyViolation {}

/// Computes the set of clients the current distributed PRT state would
/// deliver `probe` to, starting from a publisher attached to `start`.
///
/// This is a static fixpoint over the tables (active *and* pending
/// configurations, like the forwarding rule itself) — no messages are
/// sent and no broker state changes.
pub fn static_delivery_set<'a, F>(
    prt_of: F,
    start: BrokerId,
    probe: &Publication,
) -> BTreeSet<ClientId>
where
    F: Fn(BrokerId) -> &'a Prt,
{
    let mut delivered = BTreeSet::new();
    let mut visited = BTreeSet::new();
    let mut queue: VecDeque<(BrokerId, Option<BrokerId>)> = VecDeque::from([(start, None)]);
    while let Some((b, from)) = queue.pop_front() {
        if !visited.insert(b) {
            continue;
        }
        let prt = prt_of(b);
        for (_, e) in prt.iter() {
            if !e.sub.filter.matches(probe) {
                continue;
            }
            for hop in [Some(e.lasthop), e.pending.as_ref().map(|p| p.lasthop)]
                .into_iter()
                .flatten()
            {
                match hop {
                    Hop::Client(c) => {
                        delivered.insert(c);
                    }
                    Hop::Broker(n) => {
                        if Some(n) != from {
                            queue.push_back((n, Some(b)));
                        }
                    }
                }
            }
            // Multi-path forwarding fans publications out along every
            // redundant route too (empty on acyclic overlays).
            for n in &e.alt_lasthops {
                if Some(*n) != from {
                    queue.push_back((*n, Some(b)));
                }
            }
        }
    }
    delivered
}

/// One routing-consistency test case: a publisher location, a probe
/// publication, and the clients that must receive it.
#[derive(Debug, Clone)]
pub struct ConsistencyCase {
    /// Broker the probe is published at.
    pub publisher_broker: BrokerId,
    /// The probe publication.
    pub probe: Publication,
    /// Clients that must be reached.
    pub expected: BTreeSet<ClientId>,
}

/// Checks routing consistency (Sec. 3.5) over any [`NetworkView`]:
/// every expected client is reachable by the static forwarding
/// fixpoint.
///
/// Stale extra recipients are allowed, exactly as the paper's
/// consistency definition allows stale routing entries (client stubs
/// de-duplicate).
///
/// # Errors
///
/// Returns the first case whose expected set is not covered.
pub fn check_routing_consistency<N: NetworkView + ?Sized>(
    net: &N,
    cases: &[ConsistencyCase],
) -> Result<(), PropertyViolation> {
    for case in cases {
        let got = static_delivery_set(
            |b| net.view_broker(b).core().prt(),
            case.publisher_broker,
            &case.probe,
        );
        if !case.expected.is_subset(&got) {
            let missing: Vec<String> = case
                .expected
                .difference(&got)
                .map(|c| c.to_string())
                .collect();
            return Err(PropertyViolation(format!(
                "publication {} from {} misses clients [{}] (reached: {:?})",
                case.probe,
                case.publisher_broker,
                missing.join(","),
                got
            )));
        }
    }
    Ok(())
}

/// Checks notification atomicity (Sec. 3.4): the stream surfaced to a
/// client's application contains no duplicate publication ids.
///
/// # Errors
///
/// Returns the first duplicated id.
pub fn assert_exactly_once(stream: &[PublicationMsg]) -> Result<(), PropertyViolation> {
    let mut seen: BTreeSet<PubId> = BTreeSet::new();
    for p in stream {
        if !seen.insert(p.id) {
            return Err(PropertyViolation(format!(
                "publication {} delivered more than once",
                p.id
            )));
        }
    }
    Ok(())
}

/// Checks eventual completeness: every id in `expected` appears in the
/// client's surfaced stream.
///
/// # Errors
///
/// Returns the set of missing ids.
pub fn assert_all_delivered(
    stream: &[PublicationMsg],
    expected: &BTreeSet<PubId>,
) -> Result<(), PropertyViolation> {
    let got: BTreeSet<PubId> = stream.iter().map(|p| p.id).collect();
    let missing: Vec<String> = expected.difference(&got).map(|p| p.to_string()).collect();
    if missing.is_empty() {
        Ok(())
    } else {
        Err(PropertyViolation(format!(
            "missing notifications: [{}]",
            missing.join(",")
        )))
    }
}

/// The paper's routing-consistency clause (ii), checked structurally.
///
/// On an acyclic overlay: at every broker `B`, every SRT entry's
/// lasthop must be `B`'s neighbour on the unique path from `B` toward
/// the advertisement's publisher (or the publisher itself when
/// co-located). Movement transactions must leave this invariant intact
/// for every advertisement of every (possibly relocated) publisher.
///
/// On a cyclic overlay there is no unique path; the generalized
/// invariant is that the chain of *primary* lasthops from any broker
/// holding the entry reaches the publisher's home in at most one hop
/// per broker (no primary-route cycles, no dead ends) — redundant
/// `alt_lasthops` routes are extra and unchecked.
///
/// # Errors
///
/// Returns the first broker/advertisement pair whose route points the
/// wrong way (tree) or whose primary-route walk fails to reach the
/// publisher (graph).
pub fn check_srt_paths<N: NetworkView + ?Sized>(net: &N) -> Result<(), PropertyViolation> {
    let topology = net.view_topology();
    let is_tree = topology.is_tree();
    let bound = net.view_broker_ids().len();
    for b in net.view_broker_ids() {
        let broker = net.view_broker(b);
        for (adv_id, entry) in broker.core().srt().iter() {
            let Some(home) = net.view_find_client(adv_id.client) else {
                continue; // publisher currently mid-move; skip
            };
            if !is_tree {
                walk_primary_route(net, b, *adv_id, home, bound)?;
                continue;
            }
            let expected: Hop = if home == b {
                Hop::Client(adv_id.client)
            } else {
                match topology.next_hop(b, home) {
                    Some(n) => Hop::Broker(n),
                    None => continue,
                }
            };
            // During a movement window the pending configuration may
            // already point the new way while the active one still
            // points the old way; accept either.
            let pending_ok = entry
                .pending
                .as_ref()
                .is_some_and(|p| p.lasthop == expected);
            if entry.lasthop != expected && !pending_ok {
                return Err(PropertyViolation(format!(
                    "at {b}, advertisement {adv_id} lasthop {} is off the path to                      its publisher at {home} (expected {expected:?})",
                    entry.lasthop
                )));
            }
        }
    }
    Ok(())
}

/// Follows the chain of primary SRT lasthops for `adv_id` from `start`
/// and demands it reach the publisher's `home` within `bound` hops
/// (the broker count — each broker contributes at most one hop, so a
/// longer walk means a primary-route cycle).
///
/// Brokers mid-transaction (pending configurations), entries already
/// retracted along the walk, and stale client anchors are all skipped
/// rather than failed: they are transient windows the message-level
/// checks cover.
fn walk_primary_route<N: NetworkView + ?Sized>(
    net: &N,
    start: BrokerId,
    adv_id: transmob_pubsub::AdvId,
    home: BrokerId,
    bound: usize,
) -> Result<(), PropertyViolation> {
    let mut cur = start;
    let mut seen: BTreeSet<BrokerId> = BTreeSet::new();
    for _ in 0..=bound {
        if cur == home {
            return Ok(());
        }
        if !seen.insert(cur) {
            break; // primary-route cycle
        }
        let Some(entry) = net.view_broker(cur).core().srt().get(adv_id) else {
            return Ok(()); // retraction in flight along this path
        };
        if entry.pending.is_some() {
            return Ok(()); // movement window: message-level checks own this
        }
        match entry.lasthop {
            Hop::Client(_) => return Ok(()), // mid-move client anchor
            Hop::Broker(n) => cur = n,
        }
    }
    Err(PropertyViolation(format!(
        "at {start}, advertisement {adv_id}'s primary-route walk never reaches \
         its publisher at {home}"
    )))
}

/// Counts, per client, how many `Started` copies exist across the
/// network (the client-layer consistency property of Sec. 3.3 requires
/// at most one).
pub fn started_copies<N: NetworkView + ?Sized>(net: &N) -> BTreeMap<ClientId, usize> {
    let mut counts: BTreeMap<ClientId, usize> = BTreeMap::new();
    for b in net.view_broker_ids() {
        for (cid, stub) in net.view_broker(b).clients() {
            if stub.state() == ClientState::Started {
                *counts.entry(*cid).or_insert(0) += 1;
            }
        }
    }
    counts
}

/// Asserts the client-layer consistency property: at most one
/// `Started` copy per client.
///
/// # Errors
///
/// Returns the first client with more than one running copy.
pub fn assert_single_instance<N: NetworkView + ?Sized>(net: &N) -> Result<(), PropertyViolation> {
    for (c, n) in started_copies(net) {
        if n > 1 {
            return Err(PropertyViolation(format!(
                "client {c} has {n} running copies"
            )));
        }
    }
    Ok(())
}
