//! A zero-latency deterministic network of [`MobileBroker`]s.
//!
//! Like `transmob_broker::SyncNet` but for the full mobile stack:
//! messages (routing *and* movement control) are processed from one
//! global FIFO queue, every message transitively caused by a movement
//! transaction is attributed to it (the paper's per-movement message
//! metric), and protocol timers are collected but never fire — tests
//! fire them explicitly to inject timeouts.
//!
//! The timing-faithful driver with queueing delays — the one the
//! figures are produced with — is `transmob-sim`.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use transmob_broker::{Hop, MsgKind, OverlayBuilder, Topology};
use transmob_pubsub::{BrokerId, ClientId, MoveId, PublicationMsg};

use crate::messages::{ClientOp, Message, Output, TimerToken};
use crate::mobile_broker::{MobileBroker, MobileBrokerConfig};
use crate::options::NetworkOptions;
use crate::transport::{flush_outputs, Transport};

/// An observable event produced while draining the network.
#[derive(Debug, Clone, PartialEq)]
pub enum NetEvent {
    /// A notification surfaced to a client's application layer.
    Delivered {
        /// Broker hosting the client.
        broker: BrokerId,
        /// The client.
        client: ClientId,
        /// The notification.
        publication: PublicationMsg,
    },
    /// A movement finished (source-side view).
    MoveFinished {
        /// Movement id.
        m: MoveId,
        /// The client.
        client: ClientId,
        /// Whether it committed.
        committed: bool,
    },
    /// The moving client started at its target broker.
    ClientArrived {
        /// Movement id.
        m: MoveId,
        /// The client.
        client: ClientId,
        /// The target broker.
        broker: BrokerId,
    },
}

/// A protocol timer armed by some broker (never fired automatically).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArmedTimer {
    /// Broker that armed it.
    pub broker: BrokerId,
    /// The token.
    pub token: TimerToken,
    /// Requested delay (informational in this driver).
    pub delay_ns: u64,
}

/// Zero-latency deterministic driver for a network of mobile brokers.
///
/// `Clone` produces an independent copy of the whole network state
/// (used by benchmarks to re-run an operation from a fixed snapshot).
#[derive(Debug, Clone)]
pub struct InstantNet {
    topology: Arc<Topology>,
    brokers: BTreeMap<BrokerId, MobileBroker>,
    /// Queued message batches: each entry is one coalesced frame (all
    /// messages arrived together from one hop, processed in order).
    queue: VecDeque<(BrokerId, Hop, Vec<Message>, Option<MoveId>)>,
    events: Vec<NetEvent>,
    timers: Vec<ArmedTimer>,
    traffic: BTreeMap<MsgKind, u64>,
    per_move: BTreeMap<MoveId, u64>,
}

impl InstantNet {
    /// The builder entry point: `InstantNet::builder().overlay(..)
    /// .options(..).start()`.
    pub fn builder() -> InstantNetBuilder {
        InstantNetBuilder::default()
    }

    /// Builds a network over `topology`, all brokers sharing `config`.
    #[deprecated(
        since = "0.2.0",
        note = "use InstantNet::builder().overlay(..).options(..).start()"
    )]
    pub fn new(topology: Topology, config: MobileBrokerConfig) -> Self {
        Self::from_parts(topology, config)
    }

    fn from_parts(topology: Topology, config: MobileBrokerConfig) -> Self {
        let topology = Arc::new(topology);
        let brokers = topology
            .brokers()
            .map(|b| {
                (
                    b,
                    MobileBroker::new(b, Arc::clone(&topology), config.clone()),
                )
            })
            .collect();
        InstantNet {
            topology,
            brokers,
            queue: VecDeque::new(),
            events: Vec::new(),
            timers: Vec::new(),
            traffic: BTreeMap::new(),
            per_move: BTreeMap::new(),
        }
    }

    /// The overlay topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Immutable access to a broker.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn broker(&self, id: BrokerId) -> &MobileBroker {
        &self.brokers[&id]
    }

    /// Mutable access to a broker.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn broker_mut(&mut self, id: BrokerId) -> &mut MobileBroker {
        self.brokers.get_mut(&id).expect("unknown broker")
    }

    /// The broker currently hosting `client`, if any.
    pub fn find_client(&self, client: ClientId) -> Option<BrokerId> {
        self.brokers
            .iter()
            .find(|(_, b)| b.client(client).is_some())
            .map(|(id, _)| *id)
    }

    /// Creates a fresh running client at `broker`.
    pub fn create_client(&mut self, broker: BrokerId, client: ClientId) {
        self.broker_mut(broker).create_client(client);
    }

    /// Replaces a broker wholesale (crash-recovery testing: swap in a
    /// broker restored from a persisted snapshot).
    ///
    /// # Panics
    ///
    /// Panics if the replacement's id differs from `id` or is unknown.
    pub fn replace_broker(&mut self, id: BrokerId, broker: MobileBroker) {
        assert_eq!(broker.id(), id, "replacement broker id mismatch");
        assert!(self.brokers.contains_key(&id), "unknown broker {id}");
        self.brokers.insert(id, broker);
    }

    /// A clone of the shared topology handle (for restoring snapshots
    /// against the same overlay).
    pub fn topology_handle(&self) -> Arc<Topology> {
        Arc::clone(&self.topology)
    }

    /// Issues an application command at the client's current broker and
    /// runs the network to quiescence.
    ///
    /// # Panics
    ///
    /// Panics if the client is not hosted anywhere.
    pub fn client_op(&mut self, client: ClientId, op: ClientOp) {
        let broker = self.find_client(client).expect("client not hosted");
        let outs = self.broker_mut(broker).client_op(client, op);
        self.dispatch(broker, None, outs);
        self.run();
    }

    /// Issues an application command *without* draining the network:
    /// the produced messages stay queued. Combined with
    /// [`InstantNet::step_n`] and [`InstantNet::fire_timer`], this lets
    /// tests inject failures mid-protocol (e.g. fire the negotiate
    /// timeout while the negotiate message is still in flight).
    ///
    /// # Panics
    ///
    /// Panics if the client is not hosted anywhere.
    pub fn client_op_deferred(&mut self, client: ClientId, op: ClientOp) {
        let broker = self.find_client(client).expect("client not hosted");
        let outs = self.broker_mut(broker).client_op(client, op);
        self.dispatch(broker, None, outs);
    }

    /// Processes at most `n` queued message batches (partial execution
    /// for mid-protocol failure injection). Returns how many were
    /// processed.
    pub fn step_n(&mut self, n: usize) -> usize {
        let mut done = 0;
        while done < n {
            let Some((dst, from, msgs, cause)) = self.queue.pop_front() else {
                break;
            };
            self.process_batch(dst, from, msgs, cause);
            done += 1;
        }
        done
    }

    /// Number of message batches currently queued.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Drops every queued message (crash-style failure injection);
    /// returns how many were discarded.
    pub fn drain_queue(&mut self) -> usize {
        let n = self.queue.len();
        self.queue.clear();
        n
    }

    /// Fires an armed timer (failure injection), then runs to
    /// quiescence. Returns `true` if such a timer was pending.
    pub fn fire_timer(&mut self, broker: BrokerId, token: TimerToken) -> bool {
        let Some(pos) = self
            .timers
            .iter()
            .position(|t| t.broker == broker && t.token == token)
        else {
            return false;
        };
        self.timers.remove(pos);
        let outs = self.broker_mut(broker).handle_timer(token);
        self.dispatch(broker, Some(token.m), outs);
        self.run();
        true
    }

    /// The timers currently armed.
    pub fn armed_timers(&self) -> &[ArmedTimer] {
        &self.timers
    }

    /// Drains the queue until quiescent.
    pub fn run(&mut self) {
        while let Some((dst, from, msgs, cause)) = self.queue.pop_front() {
            self.process_batch(dst, from, msgs, cause);
        }
    }

    /// Processes one queued batch. Movement messages attribute to their
    /// own transaction while everything else inherits the cause of the
    /// message that produced it, so the batch is split into maximal
    /// runs sharing an effective cause; each run goes through
    /// [`MobileBroker::handle_batch`] (defined as the per-message
    /// fold), keeping metrics identical to unbatched processing.
    fn process_batch(
        &mut self,
        dst: BrokerId,
        from: Hop,
        msgs: Vec<Message>,
        cause: Option<MoveId>,
    ) {
        let mut run: Vec<Message> = Vec::new();
        let mut run_cause: Option<MoveId> = None;
        for msg in msgs {
            *self.traffic.entry(msg.kind()).or_insert(0) += 1;
            let eff = match &msg {
                Message::Move(mv) => Some(mv.move_id()),
                Message::PubSub(_) | Message::BrokerDeath { .. } => cause,
            };
            if !run.is_empty() && eff != run_cause {
                let batch = std::mem::take(&mut run);
                self.exec_run(dst, from, run_cause, batch);
            }
            run_cause = eff;
            run.push(msg);
        }
        if !run.is_empty() {
            self.exec_run(dst, from, run_cause, run);
        }
    }

    fn exec_run(&mut self, dst: BrokerId, from: Hop, cause: Option<MoveId>, msgs: Vec<Message>) {
        if let Some(m) = cause {
            *self.per_move.entry(m).or_insert(0) += msgs.len() as u64;
        }
        let outs = self
            .brokers
            .get_mut(&dst)
            .expect("unknown broker")
            .handle_batch(from, msgs);
        self.dispatch(dst, cause, outs);
    }

    fn dispatch(&mut self, src: BrokerId, cause: Option<MoveId>, outs: Vec<Output>) {
        let mut flush = InstantFlush {
            net: self,
            src,
            cause,
        };
        flush_outputs(&mut flush, outs);
    }

    /// Removes and returns the recorded events.
    pub fn take_events(&mut self) -> Vec<NetEvent> {
        std::mem::take(&mut self.events)
    }

    /// The recorded events (without clearing).
    pub fn events(&self) -> &[NetEvent] {
        &self.events
    }

    /// Notifications surfaced to `client`, in order, across all
    /// recorded events.
    pub fn deliveries_to(&self, client: ClientId) -> Vec<PublicationMsg> {
        self.events
            .iter()
            .filter_map(|e| match e {
                NetEvent::Delivered {
                    client: c,
                    publication,
                    ..
                } if *c == client => Some(publication.clone()),
                _ => None,
            })
            .collect()
    }

    /// The set of clients that received at least one notification in
    /// the currently recorded events.
    pub fn deliveries_to_all(&self) -> std::collections::BTreeSet<ClientId> {
        self.events
            .iter()
            .filter_map(|e| match e {
                NetEvent::Delivered { client, .. } => Some(*client),
                _ => None,
            })
            .collect()
    }

    /// Total messages transmitted, by kind.
    pub fn traffic(&self) -> &BTreeMap<MsgKind, u64> {
        &self.traffic
    }

    /// Messages attributed (transitively) to movement `m`.
    pub fn traffic_for_move(&self, m: MoveId) -> u64 {
        self.per_move.get(&m).copied().unwrap_or(0)
    }

    /// Per-movement message counts.
    pub fn per_move_traffic(&self) -> &BTreeMap<MoveId, u64> {
        &self.per_move
    }

    /// Resets traffic counters (after setup, before measurement).
    pub fn reset_traffic(&mut self) {
        self.traffic.clear();
        self.per_move.clear();
    }

    /// Sum of anomaly counters across brokers (healthy runs: 0).
    pub fn total_anomalies(&self) -> u64 {
        self.brokers
            .values()
            .map(|b| b.anomalies() + b.core().stats().anomalies)
            .sum()
    }

    /// Iterates the brokers.
    pub fn brokers(&self) -> impl Iterator<Item = (&BrokerId, &MobileBroker)> {
        self.brokers.iter()
    }
}

/// [`Transport`] adapter for one broker step: queues coalesced frames
/// with their cause attribution and records events/timers.
struct InstantFlush<'a> {
    net: &'a mut InstantNet,
    src: BrokerId,
    cause: Option<MoveId>,
}

impl Transport for InstantFlush<'_> {
    fn send_batch(&mut self, to: BrokerId, msgs: Vec<Message>) {
        self.net
            .queue
            .push_back((to, Hop::Broker(self.src), msgs, self.cause));
    }

    fn deliver_batch(&mut self, client: ClientId, publications: Vec<PublicationMsg>) {
        for publication in publications {
            self.net.events.push(NetEvent::Delivered {
                broker: self.src,
                client,
                publication,
            });
        }
    }

    fn control(&mut self, output: Output) {
        match output {
            Output::SetTimer { token, delay_ns } => self.net.timers.push(ArmedTimer {
                broker: self.src,
                token,
                delay_ns,
            }),
            Output::CancelTimer { token } => {
                let src = self.src;
                self.net
                    .timers
                    .retain(|t| !(t.broker == src && t.token == token));
            }
            Output::MoveFinished {
                m,
                client,
                committed,
            } => self.net.events.push(NetEvent::MoveFinished {
                m,
                client,
                committed,
            }),
            Output::ClientArrived { m, client } => self.net.events.push(NetEvent::ClientArrived {
                m,
                client,
                broker: self.src,
            }),
            Output::Send { .. } | Output::DeliverToApp { .. } => {
                unreachable!("flush_outputs routes batchable effects to the batch verbs")
            }
        }
    }
}

impl crate::properties::NetworkView for InstantNet {
    fn view_topology(&self) -> &Topology {
        self.topology()
    }

    fn view_broker_ids(&self) -> Vec<BrokerId> {
        self.brokers.keys().copied().collect()
    }

    fn view_broker(&self, id: BrokerId) -> &MobileBroker {
        self.broker(id)
    }

    fn view_find_client(&self, client: ClientId) -> Option<BrokerId> {
        self.find_client(client)
    }
}

/// Builder for [`InstantNet`] — the same `builder().overlay(..)
/// .options(..).start()` surface every driver exposes.
#[derive(Debug, Default)]
pub struct InstantNetBuilder {
    overlay: OverlayBuilder,
    options: NetworkOptions,
}

impl InstantNetBuilder {
    /// The overlay: an [`OverlayBuilder`] or a pre-built [`Topology`].
    pub fn overlay(mut self, overlay: impl Into<OverlayBuilder>) -> Self {
        self.overlay = overlay.into();
        self
    }

    /// Per-broker options ([`NetworkOptions`], [`MobileBrokerConfig`],
    /// or a bare `BrokerConfig`).
    pub fn options(mut self, options: impl Into<NetworkOptions>) -> Self {
        self.options = options.into();
        self
    }

    /// Builds the network.
    ///
    /// # Panics
    ///
    /// Panics if the overlay is invalid (empty, disconnected,
    /// duplicate edges) — use [`OverlayBuilder::build`] directly for
    /// the typed `TopologyError`.
    pub fn start(self) -> InstantNet {
        let (topology, par) = self
            .overlay
            .into_parts()
            .expect("invalid overlay passed to InstantNet::builder()");
        let mut config = self.options.config;
        if let Some(par) = par {
            config.broker.parallelism = par;
        }
        InstantNet::from_parts(topology, config)
    }
}
