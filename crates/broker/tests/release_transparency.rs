//! Differential property: the *conservative* release cascade (the
//! paper's PADRES-era behaviour — re-forward everything the withdrawn
//! entry covered and let downstream re-quench) and the *precise*
//! release ablation must both converge to routing-transparent tables
//! (the paper's Claim 1/2 transparency), even when retractions and
//! releases **cross in flight**.
//!
//! The covering_transparency suite runs every client operation to
//! quiescence before the next, so a release can never race the
//! retraction that made it necessary. Here operations are *batched*
//! into the network queue and drained in one run, which interleaves
//! e.g. "unsubscribe the covering root" with "unsubscribe the covered
//! leaf" — the scenario where a broker may re-forward a subscription
//! on the very link a crossing retraction just removed it from.
//!
//! Two oracles:
//!  * cross-mode: plain vs conservative vs precise deliver identically;
//!  * cross-schedule: for each mode, the batched (crossing) execution
//!    converges to the same delivery behaviour as the sequential
//!    (quiescent-per-op) execution of the same operations.
//!
//! Both suites also toggle advertisements, so the adv-side quench /
//! retract / `release_quenched_advs` cascade is raced the same way.

use std::collections::BTreeSet;

use proptest::prelude::*;
use transmob_broker::{BrokerConfig, PubSubMsg, SyncNet, Topology};
use transmob_pubsub::{
    AdvId, Advertisement, BrokerId, ClientId, Filter, PubId, Publication, PublicationMsg, SubId,
    Subscription,
};

/// One client-visible operation: a subscriber toggling a group filter,
/// or an advertiser slot toggling its advertisement.
#[derive(Debug, Clone)]
enum Op {
    /// `client` toggles a covered-workload-style subscription.
    Sub { client: u8, group: u8, shift: u8 },
    /// Advertiser slot (0..3) toggles its advertisement.
    Adv { slot: u8, shift: u8 },
}

fn group_filter(group: u8, shift: u8) -> Filter {
    let s = i64::from(shift);
    if group == 0 {
        Filter::builder().ge("x", s).le("x", 10_000 + s).build()
    } else {
        let lo = i64::from(group) * 1000;
        Filter::builder()
            .ge("x", lo + s)
            .le("x", lo + 500 + s)
            .build()
    }
}

/// The toggled advertiser slots: edge broker, client, and filter
/// family. Slot filters are chosen so the permanent full-space
/// advertisements cover slots 0/1 (their floods quench) while slot 2
/// is half-unbounded and therefore *not* covered — its flood quenches
/// others instead.
fn adv_slot(slot: u8, shift: u8) -> (BrokerId, ClientId, Filter) {
    let s = i64::from(shift);
    match slot {
        0 => (
            BrokerId(5),
            ClientId(30),
            Filter::builder().ge("x", s).le("x", 10_000 + s).build(),
        ),
        1 => (
            BrokerId(6),
            ClientId(31),
            Filter::builder()
                .ge("x", 5_000 + s)
                .le("x", 15_000 + s)
                .build(),
        ),
        _ => (
            BrokerId(2),
            ClientId(32),
            Filter::builder().ge("x", s).build(),
        ),
    }
}

/// A branching overlay:
///
/// ```text
///   B1 — B2 — B3 — B4
///        |    |
///        B5   B6
/// ```
///
/// Branch points make quenching per-link decisions diverge (an adv or
/// sub can be quenched toward B5 but live toward B3), which a chain
/// cannot express.
fn tree6() -> Topology {
    Topology::from_edges(
        (1..=6).map(BrokerId),
        [
            (BrokerId(1), BrokerId(2)),
            (BrokerId(2), BrokerId(3)),
            (BrokerId(3), BrokerId(4)),
            (BrokerId(2), BrokerId(5)),
            (BrokerId(3), BrokerId(6)),
        ],
    )
    .expect("tree6 is a valid tree")
}

fn arb_batches() -> impl Strategy<Value = Vec<Vec<Op>>> {
    // ~4:1 mix of subscription toggles to advertisement toggles.
    let op = (0u8..5, 0u8..10, 0u8..10, 0u8..100).prop_map(|(kind, client, group, shift)| {
        if kind < 4 {
            Op::Sub {
                client,
                group,
                shift,
            }
        } else {
            Op::Adv {
                slot: client % 3,
                shift,
            }
        }
    });
    proptest::collection::vec(proptest::collection::vec(op, 1..6), 1..10)
}

/// Replays `batches` into a fresh network. With `batched` set, every
/// op of a batch is enqueued before the queue is drained, so control
/// traffic from different ops crosses in flight; otherwise each op
/// runs to quiescence (the schedule the older suites use).
fn build_net(config: BrokerConfig, batches: &[Vec<Op>], batched: bool) -> SyncNet {
    let mut net = SyncNet::builder().overlay(tree6()).options(config).start();
    // Permanent full-space advertisers at both ends, so probes from
    // either side always have a routed path.
    for (broker, client) in [(BrokerId(1), ClientId(1)), (BrokerId(4), ClientId(2))] {
        net.client_send(
            broker,
            client,
            PubSubMsg::Advertise(Advertisement::new(
                AdvId::new(client, 0),
                Filter::builder().ge("x", 0).le("x", 20_000).build(),
            )),
        );
    }
    let mut active_sub: Vec<Option<SubId>> = vec![None; 10];
    let mut active_adv: Vec<Option<AdvId>> = vec![None; 3];
    let mut seq = 0u32;
    for batch in batches {
        for op in batch {
            seq += 1;
            let (broker, client, msg) = match *op {
                Op::Sub {
                    client,
                    group,
                    shift,
                } => {
                    let cid = ClientId(100 + u64::from(client));
                    let broker = BrokerId(1 + u32::from(client) % 6);
                    let msg = match active_sub[client as usize].take() {
                        Some(id) => PubSubMsg::Unsubscribe(id),
                        None => {
                            let id = SubId::new(cid, seq);
                            active_sub[client as usize] = Some(id);
                            PubSubMsg::Subscribe(Subscription::new(id, group_filter(group, shift)))
                        }
                    };
                    (broker, cid, msg)
                }
                Op::Adv { slot, shift } => {
                    let (broker, cid, filter) = adv_slot(slot, shift);
                    let msg = match active_adv[slot as usize].take() {
                        Some(id) => PubSubMsg::Unadvertise(id),
                        None => {
                            let id = AdvId::new(cid, seq);
                            active_adv[slot as usize] = Some(id);
                            PubSubMsg::Advertise(Advertisement::new(id, filter))
                        }
                    };
                    (broker, cid, msg)
                }
            };
            if batched {
                net.enqueue_client(broker, client, msg);
            } else {
                net.client_send(broker, client, msg);
            }
        }
        net.run();
    }
    net
}

/// Probe values straddling every group boundary the workload can
/// produce (groups are 1000-aligned with shifts below 100).
const PROBES: [i64; 14] = [
    0, 55, 501, 1_001, 1_555, 3_007, 4_444, 5_555, 7_007, 9_501, 9_999, 10_050, 12_345, 19_999,
];

/// Who receives a probe publication with value `x` published at
/// `broker` by `client` (one of the permanent advertisers).
fn delivery_set(
    net: &mut SyncNet,
    broker: BrokerId,
    client: ClientId,
    x: i64,
    probe_id: u64,
) -> BTreeSet<ClientId> {
    net.take_deliveries();
    net.client_send(
        broker,
        client,
        PubSubMsg::Publish(PublicationMsg::new(
            PubId(probe_id),
            client,
            Publication::new().with("x", x),
        )),
    );
    net.take_deliveries().iter().map(|d| d.client).collect()
}

/// Delivery behaviour fingerprint: the delivery set for every probe
/// value from both publisher edges.
fn fingerprint(net: &mut SyncNet) -> Vec<BTreeSet<ClientId>> {
    let mut out = Vec::new();
    for (k, x) in PROBES.iter().enumerate() {
        out.push(delivery_set(
            net,
            BrokerId(1),
            ClientId(1),
            *x,
            1_000 + k as u64,
        ));
        out.push(delivery_set(
            net,
            BrokerId(4),
            ClientId(2),
            *x,
            2_000 + k as u64,
        ));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservative and precise release both stay delivery-transparent
    /// against plain routing when retractions and releases cross in
    /// flight.
    #[test]
    fn crossing_release_is_delivery_transparent(batches in arb_batches()) {
        let mut plain = build_net(BrokerConfig::plain(), &batches, true);
        let mut conservative = build_net(BrokerConfig::covering(), &batches, true);
        let mut precise = build_net(BrokerConfig::covering_precise_release(), &batches, true);
        let a = fingerprint(&mut plain);
        let b = fingerprint(&mut conservative);
        let c = fingerprint(&mut precise);
        prop_assert_eq!(&a, &b, "conservative release diverged under crossing traffic");
        prop_assert_eq!(&a, &c, "precise release diverged under crossing traffic");
    }

    /// Each mode converges to the same delivery behaviour whether the
    /// operations crossed in flight or ran to quiescence one at a
    /// time: the tables are determined by the surviving operations,
    /// not the schedule.
    #[test]
    fn crossing_schedule_converges_to_sequential(batches in arb_batches()) {
        for config in [
            BrokerConfig::plain(),
            BrokerConfig::covering(),
            BrokerConfig::covering_precise_release(),
        ] {
            let mut crossed = build_net(config, &batches, true);
            let mut sequential = build_net(config, &batches, false);
            prop_assert_eq!(
                fingerprint(&mut crossed),
                fingerprint(&mut sequential),
                "schedule-dependent convergence under {:?}",
                config
            );
        }
    }

    /// Conservative release may transiently re-forward more than
    /// precise release, but at quiescence neither mode forwards state
    /// plain routing would not.
    #[test]
    fn crossing_release_never_exceeds_plain_state(batches in arb_batches()) {
        let plain = build_net(BrokerConfig::plain(), &batches, true);
        let conservative = build_net(BrokerConfig::covering(), &batches, true);
        let precise = build_net(BrokerConfig::covering_precise_release(), &batches, true);
        let forwarded = |net: &SyncNet| -> usize {
            net.brokers()
                .map(|(_, b)| b.prt().iter().map(|(_, e)| e.sent_to.len()).sum::<usize>())
                .sum()
        };
        let bound = forwarded(&plain);
        prop_assert!(forwarded(&conservative) <= bound);
        prop_assert!(forwarded(&precise) <= bound);
    }
}

/// Deterministic witness of the crossing scenario the proptest hunts:
/// a covering root and a covered leaf unsubscribe in the same batch.
/// The root's retraction triggers a release that re-forwards the leaf
/// on the link toward the advertiser while the leaf's own retraction
/// is already crossing the same link — both must cancel cleanly.
#[test]
fn crossing_root_and_leaf_unsubscribe_cancel() {
    for config in [
        BrokerConfig::covering(),
        BrokerConfig::covering_precise_release(),
    ] {
        let mut net = SyncNet::builder()
            .overlay(Topology::chain(4))
            .options(config)
            .start();
        net.client_send(
            BrokerId(1),
            ClientId(1),
            PubSubMsg::Advertise(Advertisement::new(
                AdvId::new(ClientId(1), 0),
                Filter::builder().ge("x", 0).le("x", 20_000).build(),
            )),
        );
        let leaf = Subscription::new(SubId::new(ClientId(10), 0), group_filter(1, 0));
        let root = Subscription::new(SubId::new(ClientId(11), 0), group_filter(0, 0));
        net.client_send(
            BrokerId(4),
            ClientId(10),
            PubSubMsg::Subscribe(leaf.clone()),
        );
        net.client_send(
            BrokerId(4),
            ClientId(11),
            PubSubMsg::Subscribe(root.clone()),
        );
        // Both withdraw at once: the release of `leaf` (triggered by
        // root's retraction) races leaf's own unsubscription.
        net.enqueue_client(BrokerId(4), ClientId(11), PubSubMsg::Unsubscribe(root.id));
        net.enqueue_client(BrokerId(4), ClientId(10), PubSubMsg::Unsubscribe(leaf.id));
        net.run();
        for (id, b) in net.brokers() {
            assert_eq!(
                b.prt().iter().count(),
                0,
                "stale PRT rows at {id} after crossing unsubscribes ({config:?})"
            );
        }
        assert!(delivery_set(&mut net, BrokerId(1), ClientId(1), 1_100, 9_001).is_empty());
    }
}

/// The reverse crossing: the leaf's unsubscribe is queued *before*
/// the root's, so the release fires for an entry whose retraction is
/// already in flight upstream of it.
#[test]
fn crossing_leaf_then_root_unsubscribe_cancel() {
    for config in [
        BrokerConfig::covering(),
        BrokerConfig::covering_precise_release(),
    ] {
        let mut net = SyncNet::builder()
            .overlay(Topology::chain(4))
            .options(config)
            .start();
        net.client_send(
            BrokerId(1),
            ClientId(1),
            PubSubMsg::Advertise(Advertisement::new(
                AdvId::new(ClientId(1), 0),
                Filter::builder().ge("x", 0).le("x", 20_000).build(),
            )),
        );
        let leaf = Subscription::new(SubId::new(ClientId(10), 0), group_filter(2, 3));
        let root = Subscription::new(SubId::new(ClientId(11), 0), group_filter(0, 1));
        net.client_send(
            BrokerId(4),
            ClientId(10),
            PubSubMsg::Subscribe(leaf.clone()),
        );
        net.client_send(
            BrokerId(3),
            ClientId(11),
            PubSubMsg::Subscribe(root.clone()),
        );
        net.enqueue_client(BrokerId(4), ClientId(10), PubSubMsg::Unsubscribe(leaf.id));
        net.enqueue_client(BrokerId(3), ClientId(11), PubSubMsg::Unsubscribe(root.id));
        net.run();
        for (id, b) in net.brokers() {
            assert_eq!(
                b.prt().iter().count(),
                0,
                "stale PRT rows at {id} after crossing unsubscribes ({config:?})"
            );
        }
        assert!(delivery_set(&mut net, BrokerId(1), ClientId(1), 2_100, 9_002).is_empty());
    }
}
