//! Property tests for the overlay mutation ops (`join`, `leave`,
//! `repair`): an arbitrary interleaving applied to a valid tree must
//! keep the overlay an acyclic connected tree, keep `route`/`next_hop`
//! consistent with the mutated edge set, and report edge deltas
//! ([`TopologyChange`]) that exactly account for the mutation.

use proptest::prelude::*;
use transmob_broker::{Topology, TopologyChange};
use transmob_pubsub::BrokerId;

/// One overlay mutation, with indices resolved against the broker set
/// at application time (so a generated sequence stays meaningful no
/// matter what the earlier ops did).
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Join a fresh broker, attached to the `usize`-th current broker.
    Join(usize),
    /// Graceful leave of the `usize`-th current broker.
    Leave(usize),
    /// Crash repair around the `usize`-th current broker.
    Repair(usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0usize..64).prop_map(Op::Join),
            (0usize..64).prop_map(Op::Leave),
            (0usize..64).prop_map(Op::Repair),
        ],
        0..24,
    )
}

/// Full revalidation: rebuilding the overlay from its broker and edge
/// sets re-runs the constructor's acyclicity + connectivity checks.
fn assert_valid_tree(topo: &Topology) {
    let rebuilt = Topology::from_edges(topo.brokers(), topo.edges());
    assert_eq!(
        rebuilt.as_ref(),
        Ok(topo),
        "mutation broke the connectivity invariants"
    );
    assert!(topo.is_tree(), "mutation introduced a cycle");
}

/// `route` must agree with the mutated edge set: every pair is
/// connected by a simple path whose consecutive hops are real edges,
/// and `next_hop` is its second entry.
fn assert_routes_consistent(topo: &Topology) {
    let brokers: Vec<BrokerId> = topo.brokers().collect();
    for &a in &brokers {
        for &z in &brokers {
            let route = topo
                .route(a, z)
                .unwrap_or_else(|| panic!("no route {a} -> {z}"));
            let hops = route.brokers();
            assert_eq!(hops.first(), Some(&a));
            assert_eq!(hops.last(), Some(&z));
            assert!(
                hops.len() <= brokers.len(),
                "route {a} -> {z} revisits a broker: {hops:?}"
            );
            for w in hops.windows(2) {
                assert!(
                    topo.neighbors(w[0]).contains(&w[1]),
                    "route {a} -> {z} uses the non-edge {} - {}",
                    w[0],
                    w[1]
                );
            }
            assert_eq!(topo.next_hop(a, z), hops.get(1).copied());
        }
    }
}

/// Applies the reported [`TopologyChange`] to the pre-mutation edge
/// set and demands it reproduce the post-mutation one exactly.
fn assert_change_accounts(
    before: &[(BrokerId, BrokerId)],
    change: &TopologyChange,
    after: &[(BrokerId, BrokerId)],
) {
    let mut derived: std::collections::BTreeSet<(BrokerId, BrokerId)> =
        before.iter().copied().collect();
    for e in &change.removed_edges {
        assert!(derived.remove(e), "removed edge {e:?} was not present");
    }
    for e in &change.added_edges {
        assert!(derived.insert(*e), "added edge {e:?} already present");
    }
    let after: std::collections::BTreeSet<(BrokerId, BrokerId)> = after.iter().copied().collect();
    assert_eq!(
        derived, after,
        "TopologyChange does not account for the delta"
    );
}

proptest! {
    /// Any join/leave/repair interleaving from a chain seed yields an
    /// acyclic connected overlay with consistent unique routes after
    /// every single step.
    #[test]
    fn mutation_sequences_preserve_tree_and_routes(ops in arb_ops()) {
        let mut topo = Topology::chain(5);
        let mut next_fresh = 100u32;
        for op in ops {
            let brokers: Vec<BrokerId> = topo.brokers().collect();
            let before = topo.edges();
            let change = match op {
                Op::Join(i) => {
                    let attach = brokers[i % brokers.len()];
                    let fresh = BrokerId(next_fresh);
                    next_fresh += 1;
                    topo.join(fresh, attach).expect("fresh join is always valid")
                }
                Op::Leave(i) => {
                    let gone = brokers[i % brokers.len()];
                    match topo.leave(gone) {
                        Ok((designated, change)) => {
                            prop_assert!(
                                change.added_edges.iter().all(|&(a, b)| a == designated || b == designated),
                                "leave must reconnect through the designated neighbour"
                            );
                            change
                        }
                        Err(_) => {
                            prop_assert_eq!(brokers.len(), 1, "leave may only fail on the last broker");
                            continue;
                        }
                    }
                }
                Op::Repair(i) => {
                    let dead = brokers[i % brokers.len()];
                    match topo.repair(dead) {
                        Ok(change) => change,
                        Err(_) => {
                            prop_assert_eq!(brokers.len(), 1, "repair may only fail on the last broker");
                            continue;
                        }
                    }
                }
            };
            assert_change_accounts(&before, &change, &topo.edges());
            assert_valid_tree(&topo);
            assert_routes_consistent(&topo);
        }
    }

    /// Repair is deterministic in `(topology, dead)`: two copies of
    /// the same overlay repairing the same death derive identical
    /// post-repair overlays and identical edge deltas — the property
    /// that lets every survivor repair without a coordination round.
    #[test]
    fn repair_is_deterministic(seed_ops in arb_ops(), pick in 0usize..64) {
        let mut topo = Topology::chain(5);
        let mut next_fresh = 100u32;
        for op in seed_ops {
            let brokers: Vec<BrokerId> = topo.brokers().collect();
            match op {
                Op::Join(i) => {
                    let fresh = BrokerId(next_fresh);
                    next_fresh += 1;
                    let _ = topo.join(fresh, brokers[i % brokers.len()]);
                }
                Op::Leave(i) => { let _ = topo.leave(brokers[i % brokers.len()]); }
                Op::Repair(i) => { let _ = topo.repair(brokers[i % brokers.len()]); }
            }
        }
        if topo.len() == 1 {
            // Repair needs a survivor: grow back to two brokers.
            let fresh = BrokerId(next_fresh);
            let only = topo.brokers().next().expect("non-empty");
            topo.join(fresh, only).expect("fresh join is always valid");
        }
        let brokers: Vec<BrokerId> = topo.brokers().collect();
        let dead = brokers[pick % brokers.len()];
        let mut a = topo.clone();
        let mut b = topo;
        let ca = a.repair(dead).expect("repair of a non-last broker");
        let cb = b.repair(dead).expect("repair of a non-last broker");
        prop_assert_eq!(ca, cb);
        prop_assert_eq!(a, b);
    }
}
