//! Property-based *covering transparency*: the covering optimization
//! (quench + active retraction + conservative release) must never
//! change **who receives what** — only how many control messages flow.
//!
//! For random interleavings of subscribe/unsubscribe operations from
//! clients scattered over the overlay, a covering-enabled network and
//! a covering-free network must deliver every probe publication to
//! exactly the same set of clients. This is the end-to-end correctness
//! oracle for the whole covering machinery, including the paper's
//! pathological release cascades.
//!
//! Also here: the Sec. 3.5 fault-tolerance sketch — broker algorithmic
//! state is serializable, and a deserialized broker behaves
//! identically (crash-recovery from persisted state).

use std::collections::BTreeSet;

use proptest::prelude::*;
use transmob_broker::{BrokerConfig, BrokerCore, Hop, PubSubMsg, SyncNet, Topology};
use transmob_pubsub::{
    AdvId, Advertisement, BrokerId, ClientId, Filter, PubId, Publication, PublicationMsg, SubId,
    Subscription,
};

/// A randomized subscribe-or-unsubscribe step: `client` toggles its
/// subscription to the given covered-workload-style range.
#[derive(Debug, Clone)]
struct Step {
    client: u8,
    group: u8,
    shift: u8,
}

fn group_filter(group: u8, shift: u8) -> Filter {
    // A covered-workload-like structure: group 0 is the root covering
    // the nine leaf groups; shifts make instances incomparable.
    let s = i64::from(shift);
    if group == 0 {
        Filter::builder().ge("x", s).le("x", 10_000 + s).build()
    } else {
        let lo = i64::from(group) * 1000;
        Filter::builder()
            .ge("x", lo + s)
            .le("x", lo + 500 + s)
            .build()
    }
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        (0u8..12, 0u8..10, 0u8..100).prop_map(|(client, group, shift)| Step {
            client,
            group,
            shift,
        }),
        1..25,
    )
}

/// Applies the toggle sequence to a network, returning it quiescent.
fn build_net(config: BrokerConfig, steps: &[Step]) -> SyncNet {
    let mut net = SyncNet::builder()
        .overlay(Topology::chain(5))
        .options(config)
        .start();
    // Full-space advertiser at B1.
    net.client_send(
        BrokerId(1),
        ClientId(1),
        PubSubMsg::Advertise(Advertisement::new(
            AdvId::new(ClientId(1), 0),
            Filter::builder().ge("x", 0).le("x", 20_000).build(),
        )),
    );
    // Track each client's active subscription (clients toggle).
    let mut active: Vec<Option<Subscription>> = vec![None; 12];
    for (i, step) in steps.iter().enumerate() {
        let cid = ClientId(100 + u64::from(step.client));
        let broker = BrokerId(1 + u32::from(step.client) % 5);
        match active[step.client as usize].take() {
            Some(sub) => {
                net.client_send(broker, cid, PubSubMsg::Unsubscribe(sub.id));
            }
            None => {
                let sub = Subscription::new(
                    SubId::new(cid, i as u32),
                    group_filter(step.group, step.shift),
                );
                net.client_send(broker, cid, PubSubMsg::Subscribe(sub.clone()));
                active[step.client as usize] = Some(sub);
            }
        }
    }
    net
}

/// Who receives a probe publication with value `x`, published at B1.
fn delivery_set(net: &mut SyncNet, x: i64, probe_id: u64) -> BTreeSet<ClientId> {
    net.take_deliveries();
    net.client_send(
        BrokerId(1),
        ClientId(1),
        PubSubMsg::Publish(PublicationMsg::new(
            PubId(probe_id),
            ClientId(1),
            Publication::new().with("x", x),
        )),
    );
    net.take_deliveries().iter().map(|d| d.client).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Covering (active + conservative release) is delivery-transparent.
    #[test]
    fn covering_never_changes_delivery_sets(steps in arb_steps()) {
        let mut plain = build_net(BrokerConfig::plain(), &steps);
        let mut covering = build_net(BrokerConfig::covering(), &steps);
        let mut precise = build_net(BrokerConfig::covering_precise_release(), &steps);
        for (k, x) in [55i64, 555, 1555, 5555, 9999, 10_500].iter().enumerate() {
            let a = delivery_set(&mut plain, *x, 1000 + k as u64);
            let b = delivery_set(&mut covering, *x, 1000 + k as u64);
            let c = delivery_set(&mut precise, *x, 1000 + k as u64);
            prop_assert_eq!(&a, &b, "conservative covering diverged for x={}", x);
            prop_assert_eq!(&a, &c, "precise covering diverged for x={}", x);
        }
    }

    /// Covering saves (or at least never increases by much) the
    /// steady-state routing entries relative to plain routing.
    #[test]
    fn covering_reduces_forwarded_state(steps in arb_steps()) {
        let plain = build_net(BrokerConfig::plain(), &steps);
        let covering = build_net(BrokerConfig::covering(), &steps);
        let forwarded = |net: &SyncNet| -> usize {
            net.brokers()
                .map(|(_, b)| {
                    b.prt().iter().map(|(_, e)| e.sent_to.len()).sum::<usize>()
                })
                .sum()
        };
        prop_assert!(
            forwarded(&covering) <= forwarded(&plain),
            "covering forwarded more subscription state than plain routing"
        );
    }

    /// Persisted-state recovery (Sec. 3.5): serializing a broker's
    /// algorithmic state and restoring it yields identical routing
    /// behaviour.
    #[test]
    fn broker_state_survives_persistence(steps in arb_steps()) {
        let net = build_net(BrokerConfig::covering(), &steps);
        for (id, broker) in net.brokers() {
            let json = serde_json::to_string(broker).expect("serialize broker");
            let restored: BrokerCore = serde_json::from_str(&json).expect("restore broker");
            prop_assert_eq!(broker.srt(), restored.srt(), "SRT diverged at {}", id);
            prop_assert_eq!(broker.prt(), restored.prt(), "PRT diverged at {}", id);
            // The restored broker routes a probe identically.
            let probe = PublicationMsg::new(
                PubId(999),
                ClientId(1),
                Publication::new().with("x", 555),
            );
            let mut a = broker.clone();
            let mut b = restored;
            let out_a = a.handle(Hop::Broker(BrokerId(99)), PubSubMsg::Publish(probe.clone()));
            let out_b = b.handle(Hop::Broker(BrokerId(99)), PubSubMsg::Publish(probe));
            prop_assert_eq!(out_a, out_b);
        }
    }
}

/// Deterministic replay of the checked-in proptest regression
/// (`cc 460e824d…`, shrinks to `steps = [Step { client: 0, group: 0,
/// shift: 0 }]`): a single client at B1 subscribing to the root group
/// `[x ≥ 0, x ≤ 10000]` under a full-space advertisement. Runs all
/// three properties of this file on that input.
#[test]
fn regression_single_root_subscription() {
    let steps = vec![Step {
        client: 0,
        group: 0,
        shift: 0,
    }];

    // Property 1: covering is delivery-transparent.
    let mut plain = build_net(BrokerConfig::plain(), &steps);
    let mut covering = build_net(BrokerConfig::covering(), &steps);
    let mut precise = build_net(BrokerConfig::covering_precise_release(), &steps);
    for (k, x) in [55i64, 555, 1555, 5555, 9999, 10_500].iter().enumerate() {
        let a = delivery_set(&mut plain, *x, 1000 + k as u64);
        let b = delivery_set(&mut covering, *x, 1000 + k as u64);
        let c = delivery_set(&mut precise, *x, 1000 + k as u64);
        assert_eq!(a, b, "conservative covering diverged for x={x}");
        assert_eq!(a, c, "precise covering diverged for x={x}");
    }

    // Property 2: covering never forwards more state than plain.
    let plain = build_net(BrokerConfig::plain(), &steps);
    let covering = build_net(BrokerConfig::covering(), &steps);
    let forwarded = |net: &SyncNet| -> usize {
        net.brokers()
            .map(|(_, b)| b.prt().iter().map(|(_, e)| e.sent_to.len()).sum::<usize>())
            .sum()
    };
    assert!(forwarded(&covering) <= forwarded(&plain));

    // Property 3: broker state survives persistence.
    let net = build_net(BrokerConfig::covering(), &steps);
    for (id, broker) in net.brokers() {
        let json = serde_json::to_string(broker).expect("serialize broker");
        let restored: BrokerCore = serde_json::from_str(&json).expect("restore broker");
        assert_eq!(broker.srt(), restored.srt(), "SRT diverged at {id}");
        assert_eq!(broker.prt(), restored.prt(), "PRT diverged at {id}");
        let probe = PublicationMsg::new(PubId(999), ClientId(1), Publication::new().with("x", 555));
        let mut a = broker.clone();
        let mut b = restored;
        let out_a = a.handle(Hop::Broker(BrokerId(99)), PubSubMsg::Publish(probe.clone()));
        let out_b = b.handle(Hop::Broker(BrokerId(99)), PubSubMsg::Publish(probe));
        assert_eq!(out_a, out_b);
    }
}

#[test]
fn quench_release_round_trip_preserves_delivery() {
    // Deterministic witness of the cascade correctness: root quenches
    // leaves, root leaves, leaves released, root returns, leaves
    // retracted — deliveries identical at every stage.
    let mut net = SyncNet::builder()
        .overlay(Topology::chain(4))
        .options(BrokerConfig::covering())
        .start();
    net.client_send(
        BrokerId(1),
        ClientId(1),
        PubSubMsg::Advertise(Advertisement::new(
            AdvId::new(ClientId(1), 0),
            Filter::builder().ge("x", 0).le("x", 20_000).build(),
        )),
    );
    let leafs: Vec<Subscription> = (1..=3u64)
        .map(|i| {
            Subscription::new(
                SubId::new(ClientId(10 + i), 0),
                group_filter(i as u8, i as u8),
            )
        })
        .collect();
    for (i, s) in leafs.iter().enumerate() {
        net.client_send(
            BrokerId(4),
            ClientId(11 + i as u64),
            PubSubMsg::Subscribe(s.clone()),
        );
    }
    let root = Subscription::new(SubId::new(ClientId(50), 0), group_filter(0, 7));
    let probe = |net: &mut SyncNet, id: u64| -> usize {
        net.take_deliveries();
        net.client_send(
            BrokerId(1),
            ClientId(1),
            PubSubMsg::Publish(PublicationMsg::new(
                PubId(id),
                ClientId(1),
                Publication::new().with("x", 1100),
            )),
        );
        net.take_deliveries().len()
    };
    let baseline = probe(&mut net, 1);
    // Root arrives (retracts leaf forwards), leaves still served.
    net.client_send(
        BrokerId(4),
        ClientId(50),
        PubSubMsg::Subscribe(root.clone()),
    );
    assert_eq!(probe(&mut net, 2), baseline + 1); // root also matches
                                                  // Root departs (conservative release re-forwards the leaves).
    net.client_send(BrokerId(4), ClientId(50), PubSubMsg::Unsubscribe(root.id));
    assert_eq!(probe(&mut net, 3), baseline);
}
