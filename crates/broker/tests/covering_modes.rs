//! Behavioural contrasts of the three covering modes (off / lazy /
//! active): quenching, retraction, and release behaviour — the
//! DESIGN.md covering-mode ablation at the unit level.

use transmob_broker::{BrokerConfig, CoveringMode, MsgKind, PubSubMsg, SyncNet, Topology};
use transmob_pubsub::{
    AdvId, Advertisement, BrokerId, ClientId, Filter, PubId, Publication, PublicationMsg, SubId,
    Subscription,
};

fn b(i: u32) -> BrokerId {
    BrokerId(i)
}
fn c(i: u64) -> ClientId {
    ClientId(i)
}
fn range(lo: i64, hi: i64) -> Filter {
    Filter::builder().ge("x", lo).le("x", hi).build()
}

fn net_with(mode: CoveringMode) -> SyncNet {
    let mut net = SyncNet::builder()
        .overlay(Topology::chain(4))
        .options(BrokerConfig {
            sub_covering: mode,
            adv_covering: CoveringMode::Off,
            conservative_release: true,
            ..Default::default()
        })
        .start();
    net.client_send(
        b(1),
        c(1),
        PubSubMsg::Advertise(Advertisement::new(AdvId::new(c(1), 0), range(0, 1000))),
    );
    net
}

fn sub(client: u64, lo: i64, hi: i64) -> Subscription {
    Subscription::new(SubId::new(c(client), 0), range(lo, hi))
}

#[test]
fn lazy_quenches_but_never_retracts() {
    let mut net = net_with(CoveringMode::Lazy);
    // Narrow first: propagates all the way.
    net.client_send(b(4), c(2), PubSubMsg::Subscribe(sub(2, 10, 20)));
    assert!(net.broker(b(1)).prt().get(SubId::new(c(2), 0)).is_some());
    net.reset_traffic();
    // Covering sub second: lazy mode forwards it but does NOT retract
    // the narrow one.
    net.client_send(b(4), c(3), PubSubMsg::Subscribe(sub(3, 0, 1000)));
    assert_eq!(net.traffic().get(&MsgKind::Unsubscribe), None);
    assert!(net.broker(b(1)).prt().get(SubId::new(c(2), 0)).is_some());
    assert!(net.broker(b(1)).prt().get(SubId::new(c(3), 0)).is_some());
    // A third, covered sub arriving after is quenched.
    net.reset_traffic();
    net.client_send(b(4), c(4), PubSubMsg::Subscribe(sub(4, 30, 40)));
    assert_eq!(net.traffic()[&MsgKind::Subscribe], 1); // injection only
    assert!(net.broker(b(3)).prt().get(SubId::new(c(4), 0)).is_none());
}

#[test]
fn active_retracts_where_lazy_does_not() {
    let mut net = net_with(CoveringMode::Active);
    net.client_send(b(4), c(2), PubSubMsg::Subscribe(sub(2, 10, 20)));
    net.reset_traffic();
    net.client_send(b(4), c(3), PubSubMsg::Subscribe(sub(3, 0, 1000)));
    assert!(net.traffic()[&MsgKind::Unsubscribe] >= 3, "no retraction");
    assert!(net.broker(b(1)).prt().get(SubId::new(c(2), 0)).is_none());
}

#[test]
fn all_modes_deliver_identically() {
    for mode in [CoveringMode::Off, CoveringMode::Lazy, CoveringMode::Active] {
        let mut net = net_with(mode);
        net.client_send(b(4), c(2), PubSubMsg::Subscribe(sub(2, 10, 20)));
        net.client_send(b(4), c(3), PubSubMsg::Subscribe(sub(3, 0, 1000)));
        net.client_send(b(4), c(4), PubSubMsg::Subscribe(sub(4, 30, 40)));
        net.client_send(
            b(1),
            c(1),
            PubSubMsg::Publish(PublicationMsg::new(
                PubId(1),
                c(1),
                Publication::new().with("x", 15),
            )),
        );
        let mut clients: Vec<u64> = net.take_deliveries().iter().map(|d| d.client.0).collect();
        clients.sort_unstable();
        assert_eq!(clients, vec![2, 3], "mode {mode:?} diverged");
    }
}

#[test]
fn lazy_release_still_recovers_quenched_subs() {
    // Even without retraction, unsubscribing the quencher must release
    // what it quenched (correctness, not optimization).
    let mut net = net_with(CoveringMode::Lazy);
    let root = sub(3, 0, 1000);
    net.client_send(b(4), c(3), PubSubMsg::Subscribe(root.clone()));
    net.client_send(b(4), c(2), PubSubMsg::Subscribe(sub(2, 10, 20))); // quenched
    assert!(net.broker(b(3)).prt().get(SubId::new(c(2), 0)).is_none());
    net.client_send(b(4), c(3), PubSubMsg::Unsubscribe(root.id));
    // Released: the narrow sub now propagates.
    assert!(net.broker(b(1)).prt().get(SubId::new(c(2), 0)).is_some());
    net.client_send(
        b(1),
        c(1),
        PubSubMsg::Publish(PublicationMsg::new(
            PubId(2),
            c(1),
            Publication::new().with("x", 15),
        )),
    );
    let d = net.take_deliveries();
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].client, c(2));
}

#[test]
fn adv_covering_independent_of_sub_covering() {
    // Advertisement covering runs on its own mode switch.
    let mut net = SyncNet::builder()
        .overlay(Topology::chain(3))
        .options(BrokerConfig {
            sub_covering: CoveringMode::Off,
            adv_covering: CoveringMode::Lazy,
            conservative_release: true,
            ..Default::default()
        })
        .start();
    net.client_send(
        b(1),
        c(1),
        PubSubMsg::Advertise(Advertisement::new(AdvId::new(c(1), 0), range(0, 1000))),
    );
    net.reset_traffic();
    // Covered adv is quenched (lazy), but nothing is retracted.
    net.client_send(
        b(1),
        c(2),
        PubSubMsg::Advertise(Advertisement::new(AdvId::new(c(2), 0), range(10, 20))),
    );
    assert_eq!(net.traffic()[&MsgKind::Advertise], 1); // injection only
    assert_eq!(net.traffic().get(&MsgKind::Unadvertise), None);
    assert_eq!(net.broker(b(3)).srt().len(), 1);
}
