//! Behavioural tests of the routing substrate: flooding, subscription
//! routing, publication delivery, covering quench/retract/release
//! cascades, and the pull/prune consistency rules — all exercised over
//! the deterministic `SyncNet`.

use transmob_broker::{
    BrokerConfig, BrokerCore, CoveringMode, Hop, MsgKind, PubSubMsg, SyncNet, Topology,
};
use transmob_pubsub::{
    AdvId, Advertisement, BrokerId, ClientId, Filter, PubId, Publication, PublicationMsg, SubId,
    Subscription,
};

fn b(i: u32) -> BrokerId {
    BrokerId(i)
}

fn c(i: u64) -> ClientId {
    ClientId(i)
}

fn adv(client: u64, seq: u32, f: Filter) -> Advertisement {
    Advertisement::new(AdvId::new(c(client), seq), f)
}

fn sub(client: u64, seq: u32, f: Filter) -> Subscription {
    Subscription::new(SubId::new(c(client), seq), f)
}

fn range(lo: i64, hi: i64) -> Filter {
    Filter::builder().ge("x", lo).le("x", hi).build()
}

fn publish(net: &mut SyncNet, broker: BrokerId, client: u64, id: u64, x: i64) {
    net.client_send(
        broker,
        c(client),
        PubSubMsg::Publish(PublicationMsg::new(
            PubId(id),
            c(client),
            Publication::new().with("x", x),
        )),
    );
}

#[test]
fn advertisement_floods_entire_overlay() {
    let mut net = SyncNet::builder()
        .overlay(Topology::chain(5))
        .options(BrokerConfig::plain())
        .start();
    net.client_send(b(1), c(1), PubSubMsg::Advertise(adv(1, 0, range(0, 10))));
    for i in 1..=5 {
        assert_eq!(net.broker(b(i)).srt().len(), 1, "broker {i} missing adv");
    }
    // lasthops point back toward the advertiser
    assert_eq!(
        net.broker(b(3))
            .srt()
            .get(AdvId::new(c(1), 0))
            .unwrap()
            .lasthop,
        Hop::Broker(b(2))
    );
    assert_eq!(
        net.broker(b(1))
            .srt()
            .get(AdvId::new(c(1), 0))
            .unwrap()
            .lasthop,
        Hop::Client(c(1))
    );
    // 4 overlay hops + 1 client injection
    assert_eq!(net.traffic()[&MsgKind::Advertise], 5);
}

#[test]
fn subscription_routes_only_toward_intersecting_advertisement() {
    // Star: advertiser on leaf 2, subscriber on leaf 3, bystander leaf 4.
    let mut net = SyncNet::builder()
        .overlay(Topology::star(4))
        .options(BrokerConfig::plain())
        .start();
    net.client_send(b(2), c(1), PubSubMsg::Advertise(adv(1, 0, range(0, 10))));
    net.client_send(b(3), c(2), PubSubMsg::Subscribe(sub(2, 0, range(5, 15))));
    // Subscription installed at B3 (access), B1 (centre), B2 (advertiser),
    // but NOT at bystander B4.
    assert_eq!(net.broker(b(3)).prt().len(), 1);
    assert_eq!(net.broker(b(1)).prt().len(), 1);
    assert_eq!(net.broker(b(2)).prt().len(), 1);
    assert_eq!(net.broker(b(4)).prt().len(), 0);
}

#[test]
fn non_intersecting_subscription_stays_local() {
    let mut net = SyncNet::builder()
        .overlay(Topology::chain(3))
        .options(BrokerConfig::plain())
        .start();
    net.client_send(b(1), c(1), PubSubMsg::Advertise(adv(1, 0, range(0, 10))));
    net.client_send(b(3), c(2), PubSubMsg::Subscribe(sub(2, 0, range(50, 60))));
    assert_eq!(net.broker(b(3)).prt().len(), 1); // stored at access broker
    assert_eq!(net.broker(b(2)).prt().len(), 0); // not propagated
}

#[test]
fn publication_delivered_end_to_end_exactly_once() {
    let mut net = SyncNet::builder()
        .overlay(Topology::chain(5))
        .options(BrokerConfig::plain())
        .start();
    net.client_send(b(1), c(1), PubSubMsg::Advertise(adv(1, 0, range(0, 100))));
    net.client_send(b(5), c(2), PubSubMsg::Subscribe(sub(2, 0, range(0, 50))));
    publish(&mut net, b(1), 1, 1, 25);
    let d = net.take_deliveries();
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].client, c(2));
    assert_eq!(d[0].broker, b(5));
    // Non-matching publication is dropped en route.
    publish(&mut net, b(1), 1, 2, 75);
    assert!(net.take_deliveries().is_empty());
}

#[test]
fn publication_not_routed_into_empty_branches() {
    let mut net = SyncNet::builder()
        .overlay(Topology::star(4))
        .options(BrokerConfig::plain())
        .start();
    net.client_send(b(2), c(1), PubSubMsg::Advertise(adv(1, 0, range(0, 100))));
    net.client_send(b(3), c(2), PubSubMsg::Subscribe(sub(2, 0, range(0, 100))));
    net.reset_traffic();
    publish(&mut net, b(2), 1, 1, 10);
    // publish messages: client->B2, B2->B1, B1->B3 = 3; never to B4.
    assert_eq!(net.traffic()[&MsgKind::Publish], 3);
    assert_eq!(
        net.broker(b(4)).stats().handled.get(&MsgKind::Publish),
        None
    );
}

#[test]
fn multiple_matching_subs_of_one_client_deliver_once() {
    let mut net = SyncNet::builder()
        .overlay(Topology::chain(2))
        .options(BrokerConfig::plain())
        .start();
    net.client_send(b(1), c(1), PubSubMsg::Advertise(adv(1, 0, range(0, 100))));
    net.client_send(b(2), c(2), PubSubMsg::Subscribe(sub(2, 0, range(0, 50))));
    net.client_send(b(2), c(2), PubSubMsg::Subscribe(sub(2, 1, range(0, 30))));
    publish(&mut net, b(1), 1, 1, 10);
    assert_eq!(net.take_deliveries().len(), 1);
}

#[test]
fn two_subscribers_both_receive() {
    let mut net = SyncNet::builder()
        .overlay(Topology::star(4))
        .options(BrokerConfig::plain())
        .start();
    net.client_send(b(1), c(1), PubSubMsg::Advertise(adv(1, 0, range(0, 100))));
    net.client_send(b(2), c(2), PubSubMsg::Subscribe(sub(2, 0, range(0, 50))));
    net.client_send(b(3), c(3), PubSubMsg::Subscribe(sub(3, 0, range(0, 50))));
    publish(&mut net, b(1), 1, 1, 20);
    let mut clients: Vec<u64> = net.take_deliveries().iter().map(|d| d.client.0).collect();
    clients.sort_unstable();
    assert_eq!(clients, vec![2, 3]);
}

#[test]
fn publisher_does_not_receive_own_publication() {
    let mut net = SyncNet::builder()
        .overlay(Topology::chain(2))
        .options(BrokerConfig::plain())
        .start();
    net.client_send(b(1), c(1), PubSubMsg::Advertise(adv(1, 0, range(0, 100))));
    net.client_send(b(1), c(1), PubSubMsg::Subscribe(sub(1, 0, range(0, 100))));
    publish(&mut net, b(1), 1, 1, 10);
    assert!(net.take_deliveries().is_empty());
}

#[test]
fn unsubscribe_retracts_along_path() {
    let mut net = SyncNet::builder()
        .overlay(Topology::chain(4))
        .options(BrokerConfig::plain())
        .start();
    net.client_send(b(1), c(1), PubSubMsg::Advertise(adv(1, 0, range(0, 100))));
    net.client_send(b(4), c(2), PubSubMsg::Subscribe(sub(2, 0, range(0, 100))));
    assert_eq!(net.broker(b(1)).prt().len(), 1);
    net.client_send(b(4), c(2), PubSubMsg::Unsubscribe(SubId::new(c(2), 0)));
    for i in 1..=4 {
        assert_eq!(net.broker(b(i)).prt().len(), 0, "stale entry at B{i}");
    }
    publish(&mut net, b(1), 1, 1, 10);
    assert!(net.take_deliveries().is_empty());
}

#[test]
fn unadvertise_retracts_and_prunes_subscriptions() {
    let mut net = SyncNet::builder()
        .overlay(Topology::chain(3))
        .options(BrokerConfig::plain())
        .start();
    net.client_send(b(1), c(1), PubSubMsg::Advertise(adv(1, 0, range(0, 100))));
    net.client_send(b(3), c(2), PubSubMsg::Subscribe(sub(2, 0, range(0, 100))));
    // Sub reached B1.
    assert_eq!(net.broker(b(1)).prt().len(), 1);
    net.client_send(b(1), c(1), PubSubMsg::Unadvertise(AdvId::new(c(1), 0)));
    for i in 1..=3 {
        assert_eq!(net.broker(b(i)).srt().len(), 0, "stale adv at B{i}");
    }
    // Prune: subscription withdrawn from links that pointed at the adv,
    // but retained at the subscriber's access broker.
    assert_eq!(net.broker(b(1)).prt().len(), 0);
    assert_eq!(net.broker(b(2)).prt().len(), 0);
    assert_eq!(net.broker(b(3)).prt().len(), 1);
}

#[test]
fn late_advertisement_pulls_existing_subscriptions() {
    let mut net = SyncNet::builder()
        .overlay(Topology::chain(4))
        .options(BrokerConfig::plain())
        .start();
    // Subscriber first: no adv yet, sub stays local.
    net.client_send(b(4), c(2), PubSubMsg::Subscribe(sub(2, 0, range(0, 100))));
    assert_eq!(net.broker(b(3)).prt().len(), 0);
    // Advertiser appears at the far end: flooding pulls the sub.
    net.client_send(b(1), c(1), PubSubMsg::Advertise(adv(1, 0, range(0, 100))));
    assert_eq!(net.broker(b(1)).prt().len(), 1);
    publish(&mut net, b(1), 1, 1, 42);
    assert_eq!(net.take_deliveries().len(), 1);
}

#[test]
fn second_advertisement_does_not_duplicate_deliveries() {
    let mut net = SyncNet::builder()
        .overlay(Topology::chain(3))
        .options(BrokerConfig::plain())
        .start();
    net.client_send(b(1), c(1), PubSubMsg::Advertise(adv(1, 0, range(0, 100))));
    net.client_send(b(1), c(1), PubSubMsg::Advertise(adv(1, 1, range(0, 100))));
    net.client_send(b(3), c(2), PubSubMsg::Subscribe(sub(2, 0, range(0, 100))));
    publish(&mut net, b(1), 1, 1, 42);
    assert_eq!(net.take_deliveries().len(), 1);
}

// ----- covering behaviour -------------------------------------------

fn covering_net(n: u32) -> SyncNet {
    SyncNet::builder()
        .overlay(Topology::chain(n))
        .options(BrokerConfig {
            sub_covering: CoveringMode::Active,
            adv_covering: CoveringMode::Off,
            conservative_release: false,
            ..Default::default()
        })
        .start()
}

#[test]
fn covered_subscription_is_quenched() {
    let mut net = covering_net(4);
    net.client_send(b(1), c(9), PubSubMsg::Advertise(adv(9, 0, range(0, 100))));
    // Root (covering) subscription from client 1 at B4.
    net.client_send(b(4), c(1), PubSubMsg::Subscribe(sub(1, 0, range(0, 100))));
    net.reset_traffic();
    // Covered subscription from client 2, also at B4: quenched at B4.
    net.client_send(b(4), c(2), PubSubMsg::Subscribe(sub(2, 0, range(10, 20))));
    // Only the client→B4 injection; no overlay propagation.
    assert_eq!(net.traffic()[&MsgKind::Subscribe], 1);
    assert_eq!(net.broker(b(3)).prt().len(), 1);
    // Publication still reaches both subscribers via the covering sub?
    // No — the covered sub exists only at B4; matching happens there.
    publish(&mut net, b(1), 9, 1, 15);
    let mut clients: Vec<u64> = net.take_deliveries().iter().map(|d| d.client.0).collect();
    clients.sort_unstable();
    assert_eq!(clients, vec![1, 2]);
}

#[test]
fn active_covering_retracts_previously_forwarded_subs() {
    let mut net = covering_net(3);
    net.client_send(b(1), c(9), PubSubMsg::Advertise(adv(9, 0, range(0, 100))));
    // Narrow sub first: propagates to B1.
    net.client_send(b(3), c(1), PubSubMsg::Subscribe(sub(1, 0, range(10, 20))));
    assert_eq!(net.broker(b(1)).prt().len(), 1);
    net.reset_traffic();
    // Covering sub second: propagates AND retracts the narrow one.
    net.client_send(b(3), c(2), PubSubMsg::Subscribe(sub(2, 0, range(0, 100))));
    assert!(net.traffic()[&MsgKind::Unsubscribe] >= 2); // retractions en route
                                                        // Narrow sub now lives only at its access broker.
    assert_eq!(net.broker(b(1)).prt().len(), 1);
    assert!(net.broker(b(1)).prt().get(SubId::new(c(2), 0)).is_some());
    assert!(net.broker(b(1)).prt().get(SubId::new(c(1), 0)).is_none());
    // Deliveries still correct for both.
    publish(&mut net, b(1), 9, 1, 15);
    let mut clients: Vec<u64> = net.take_deliveries().iter().map(|d| d.client.0).collect();
    clients.sort_unstable();
    assert_eq!(clients, vec![1, 2]);
}

#[test]
fn unsubscribing_root_releases_quenched_subs() {
    let mut net = covering_net(4);
    net.client_send(b(1), c(9), PubSubMsg::Advertise(adv(9, 0, range(0, 100))));
    // Root covering sub, then two covered subs (quenched).
    net.client_send(b(4), c(1), PubSubMsg::Subscribe(sub(1, 0, range(0, 100))));
    net.client_send(b(4), c(2), PubSubMsg::Subscribe(sub(2, 0, range(10, 20))));
    net.client_send(b(4), c(3), PubSubMsg::Subscribe(sub(3, 0, range(30, 40))));
    assert_eq!(net.broker(b(1)).prt().len(), 1);
    net.reset_traffic();
    // Root unsubscribes: the paper's pathological burst — the two
    // covered subs must now propagate to keep routing correct.
    net.client_send(b(4), c(1), PubSubMsg::Unsubscribe(SubId::new(c(1), 0)));
    assert_eq!(net.broker(b(1)).prt().len(), 2);
    // The release cost: 3 unsub hops + 1 injection, and 2 subs × 3 hops.
    assert!(net.traffic()[&MsgKind::Subscribe] >= 6);
    publish(&mut net, b(1), 9, 1, 35);
    let clients: Vec<u64> = net.take_deliveries().iter().map(|d| d.client.0).collect();
    assert_eq!(clients, vec![3]);
}

#[test]
fn covering_chain_workload_quenches_transitively() {
    let mut net = covering_net(3);
    net.client_send(b(1), c(9), PubSubMsg::Advertise(adv(9, 0, range(0, 100))));
    // chained: s1 ⊃ s2 ⊃ s3, issued broadest-first.
    net.client_send(b(3), c(1), PubSubMsg::Subscribe(sub(1, 0, range(0, 90))));
    net.reset_traffic();
    net.client_send(b(3), c(2), PubSubMsg::Subscribe(sub(2, 0, range(0, 50))));
    net.client_send(b(3), c(3), PubSubMsg::Subscribe(sub(3, 0, range(0, 20))));
    // Both quenched by s1: only the two injections.
    assert_eq!(net.traffic()[&MsgKind::Subscribe], 2);
}

#[test]
fn adv_covering_quenches_flood_and_release_on_unadvertise() {
    let mut net = SyncNet::builder()
        .overlay(Topology::chain(4))
        .options(BrokerConfig {
            sub_covering: CoveringMode::Off,
            adv_covering: CoveringMode::Active,
            conservative_release: false,
            ..Default::default()
        })
        .start();
    // Covering adv first.
    net.client_send(b(1), c(1), PubSubMsg::Advertise(adv(1, 0, range(0, 100))));
    net.reset_traffic();
    // Covered adv from the same broker: quenched immediately.
    net.client_send(b(1), c(2), PubSubMsg::Advertise(adv(2, 0, range(10, 20))));
    assert_eq!(net.traffic()[&MsgKind::Advertise], 1); // injection only
    assert_eq!(net.broker(b(4)).srt().len(), 1);
    net.reset_traffic();
    // Unadvertise the root: covered adv must now flood (the burst).
    net.client_send(b(1), c(1), PubSubMsg::Unadvertise(AdvId::new(c(1), 0)));
    assert_eq!(net.broker(b(4)).srt().len(), 1);
    assert!(net.broker(b(4)).srt().get(AdvId::new(c(2), 0)).is_some());
    assert!(net.traffic()[&MsgKind::Advertise] >= 3);
}

#[test]
fn subscription_routed_by_covering_sub_still_delivers_downstream() {
    // Quenched subs still receive because the covering sub routes the
    // publication all the way to the shared access broker.
    let mut net = covering_net(5);
    net.client_send(b(1), c(9), PubSubMsg::Advertise(adv(9, 0, range(0, 100))));
    net.client_send(b(5), c(1), PubSubMsg::Subscribe(sub(1, 0, range(0, 100))));
    net.client_send(b(5), c(2), PubSubMsg::Subscribe(sub(2, 0, range(40, 60))));
    publish(&mut net, b(1), 9, 1, 50);
    let mut clients: Vec<u64> = net.take_deliveries().iter().map(|d| d.client.0).collect();
    clients.sort_unstable();
    assert_eq!(clients, vec![1, 2]);
    publish(&mut net, b(1), 9, 2, 5);
    let clients: Vec<u64> = net.take_deliveries().iter().map(|d| d.client.0).collect();
    assert_eq!(clients, vec![1]);
}

// ----- pending-configuration (movement) hooks ------------------------

#[test]
fn pending_sub_config_routes_to_both_until_commit() {
    // Subscriber moves B4 → B1 on a chain; install pending configs by
    // hand (the protocol in transmob-core automates this).
    let mut net = SyncNet::builder()
        .overlay(Topology::chain(4))
        .options(BrokerConfig::plain())
        .start();
    net.client_send(b(4), c(1), PubSubMsg::Advertise(adv(1, 0, range(0, 100))));
    let s = sub(2, 0, range(0, 100));
    net.client_send(b(1), c(2), PubSubMsg::Subscribe(s.clone()));
    use transmob_pubsub::MoveId;
    let m = MoveId(1);
    // Route B1→B4: at B1 new lasthop is B2 ... at B4 new lasthop is client.
    net.broker_mut(b(1))
        .install_pending_sub(&s, m, Hop::Broker(b(2)), None);
    net.broker_mut(b(2))
        .install_pending_sub(&s, m, Hop::Broker(b(3)), Some(b(1)));
    net.broker_mut(b(3))
        .install_pending_sub(&s, m, Hop::Broker(b(4)), Some(b(2)));
    net.broker_mut(b(4))
        .install_pending_sub(&s, m, Hop::Client(c(2)), Some(b(3)));
    // During the window a publication reaches BOTH client locations
    // (the brokers deliver; the stubs dedupe by PubId).
    publish(&mut net, b(4), 1, 1, 10);
    let d = net.take_deliveries();
    let mut brokers: Vec<u32> = d.iter().map(|x| x.broker.0).collect();
    brokers.sort_unstable();
    assert_eq!(brokers, vec![1, 4]);
    // Commit everywhere: old path gone, new delivery only at B4.
    for i in 1..=4 {
        let outs = net.broker_mut(b(i)).commit_move(m);
        assert!(outs.is_empty(), "sub move commit should not prune");
    }
    publish(&mut net, b(4), 1, 2, 10);
    let d = net.take_deliveries();
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].broker, b(4));
    // Unsubscribe from the new location cleans every broker.
    net.client_send(b(4), c(2), PubSubMsg::Unsubscribe(s.id));
    for i in 1..=4 {
        assert_eq!(net.broker(b(i)).prt().len(), 0, "stale sub at B{i}");
    }
}

#[test]
fn pending_sub_abort_restores_original_routing() {
    let mut net = SyncNet::builder()
        .overlay(Topology::chain(3))
        .options(BrokerConfig::plain())
        .start();
    net.client_send(b(3), c(1), PubSubMsg::Advertise(adv(1, 0, range(0, 100))));
    let s = sub(2, 0, range(0, 100));
    net.client_send(b(1), c(2), PubSubMsg::Subscribe(s.clone()));
    use transmob_pubsub::MoveId;
    let m = MoveId(7);
    net.broker_mut(b(1))
        .install_pending_sub(&s, m, Hop::Broker(b(2)), None);
    net.broker_mut(b(2))
        .install_pending_sub(&s, m, Hop::Broker(b(3)), Some(b(1)));
    net.broker_mut(b(3))
        .install_pending_sub(&s, m, Hop::Client(c(2)), Some(b(2)));
    let before = net.broker(b(1)).prt().get(s.id).unwrap().lasthop;
    for i in 1..=3 {
        net.broker_mut(b(i)).abort_move(m);
    }
    // Entry unchanged at B1/B2; created entry at B3 removed.
    assert_eq!(net.broker(b(1)).prt().get(s.id).unwrap().lasthop, before);
    assert!(net.broker(b(1)).prt().get(s.id).unwrap().pending.is_none());
    // B3 had an entry only if the sub had propagated there; it did
    // (adv at B3), so the pending flag is simply cleared.
    assert!(net.broker(b(3)).prt().get(s.id).is_some());
    publish(&mut net, b(3), 1, 1, 10);
    let d = net.take_deliveries();
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].broker, b(1));
}

#[test]
fn pending_created_entry_removed_on_abort() {
    // No advertisement: subscription never propagates, so path brokers
    // get created-by-move entries which abort must remove.
    let mut net = SyncNet::builder()
        .overlay(Topology::chain(3))
        .options(BrokerConfig::plain())
        .start();
    let s = sub(2, 0, range(0, 100));
    net.client_send(b(1), c(2), PubSubMsg::Subscribe(s.clone()));
    use transmob_pubsub::MoveId;
    let m = MoveId(3);
    net.broker_mut(b(2))
        .install_pending_sub(&s, m, Hop::Broker(b(3)), Some(b(1)));
    assert!(net.broker(b(2)).prt().get(s.id).is_some());
    net.broker_mut(b(2)).abort_move(m);
    assert!(net.broker(b(2)).prt().get(s.id).is_none());
}

#[test]
fn pending_adv_move_with_commit_prunes_stale_sub_paths() {
    // Publisher moves B1 → B4; a subscriber sits at B3 (so its sub,
    // with lasthop toward B3, is case 1/3 material).
    let mut net = SyncNet::builder()
        .overlay(Topology::chain(4))
        .options(BrokerConfig::plain())
        .start();
    let a = adv(1, 0, range(0, 100));
    net.client_send(b(1), c(1), PubSubMsg::Advertise(a.clone()));
    let s = sub(2, 0, range(0, 100));
    net.client_send(b(3), c(2), PubSubMsg::Subscribe(s.clone()));
    // Sub propagated toward the adv: B3 → B2 → B1.
    assert!(net.broker(b(1)).prt().get(s.id).is_some());
    use transmob_pubsub::MoveId;
    let m = MoveId(11);
    // Prepare along route <B1,B2,B3,B4>: new adv lasthop = suc(B).
    net.broker_mut(b(1))
        .install_pending_adv(&a, m, Hop::Broker(b(2)), None);
    net.broker_mut(b(2))
        .install_pending_adv(&a, m, Hop::Broker(b(3)), Some(b(1)));
    net.broker_mut(b(3))
        .install_pending_adv(&a, m, Hop::Broker(b(4)), Some(b(2)));
    net.broker_mut(b(4))
        .install_pending_adv(&a, m, Hop::Client(c(1)), Some(b(3)));
    // Case 1/3 fixups: pull intersecting subs toward the target.
    net.with_broker(b(1), |br| ((), br.pull_subs_toward(a.id, b(2))));
    net.with_broker(b(2), |br| ((), br.pull_subs_toward(a.id, b(3))));
    net.with_broker(b(3), |br| ((), br.pull_subs_toward(a.id, b(4))));
    // The subscription must now extend to B4 so post-move publications
    // route.
    assert!(net.broker(b(4)).prt().get(s.id).is_some());
    // Commit hop-by-hop.
    for i in [4u32, 3, 2, 1] {
        net.with_broker(b(i), |br| ((), br.commit_move(m)));
    }
    // Publications from the new location reach the subscriber.
    publish(&mut net, b(4), 1, 1, 10);
    let d = net.take_deliveries();
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].broker, b(3));
    // And the stale tail at B1 was pruned: B1 should no longer hold
    // the subscription (no adv lies that way anymore).
    assert!(net.broker(b(1)).prt().get(s.id).is_none());
}

#[test]
fn broker_stats_count_and_anomalies() {
    let mut net = SyncNet::builder()
        .overlay(Topology::chain(2))
        .options(BrokerConfig::plain())
        .start();
    // An unsubscribe for an unknown id is a tolerated stale retraction.
    net.client_send(b(1), c(1), PubSubMsg::Unsubscribe(SubId::new(c(1), 0)));
    assert_eq!(net.broker(b(1)).stats().reroutes, 1);
    assert_eq!(net.broker(b(1)).stats().anomalies, 0);
    net.client_send(b(1), c(1), PubSubMsg::Advertise(adv(1, 0, range(0, 1))));
    assert_eq!(net.broker(b(1)).stats().handled[&MsgKind::Advertise], 1);
}

#[test]
fn broker_core_is_send_and_clonable() {
    fn assert_send<T: Send>() {}
    assert_send::<BrokerCore>();
    let core = BrokerCore::new(b(1), [b(2)], BrokerConfig::covering());
    let _clone = core.clone();
}
