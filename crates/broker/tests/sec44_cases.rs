//! The three PRT cases of the paper's Sec. 4.4, exercised one by one
//! for a moving advertisement `adv` with `RouteS2T = <B1 ... B5>`:
//!
//! - **Case 1**: `sub.lasthop = Bx ∉ RouteS2T` — the subscription came
//!   from off-path; it must additionally be forwarded toward the
//!   advertisement's new direction (`RouteS2T.suc(Bl)`).
//! - **Case 2**: `sub.lasthop = RouteS2T.suc(Bl)` — the subscriber
//!   lies toward the target; after the move the entry is stale and is
//!   removed unless another advertisement justifies it.
//! - **Case 3**: `sub.lasthop = RouteS2T.pre(Bl)` — the subscription
//!   is justified by *another* advertisement; it too must be forwarded
//!   toward the new direction if not already.
//!
//! Each case is built as a minimal overlay, the reconfiguration is
//! driven through the broker pending-configuration API (as the
//! movement protocol does), and the post-commit routing is validated
//! by actually routing publications.

use transmob_broker::{BrokerConfig, Hop, PubSubMsg, SyncNet, Topology};
use transmob_pubsub::{
    AdvId, Advertisement, BrokerId, ClientId, Filter, MoveId, PubId, Publication, PublicationMsg,
    SubId, Subscription,
};

fn b(i: u32) -> BrokerId {
    BrokerId(i)
}
fn c(i: u64) -> ClientId {
    ClientId(i)
}
fn range(lo: i64, hi: i64) -> Filter {
    Filter::builder().ge("x", lo).le("x", hi).build()
}

/// Installs pendings for `adv` along the chain `1..=5` (publisher
/// moving B1 → B5), runs the Sec. 4.4 pull fix-ups, and commits
/// hop-by-hop from the source — returning the net ready for
/// post-commit validation.
fn reconfigure_adv_move(net: &mut SyncNet, a: &Advertisement) {
    let m = MoveId(77);
    // Prepare pass (target → source, as the approval message walks).
    net.broker_mut(b(5))
        .install_pending_adv(a, m, Hop::Client(c(1)), Some(b(4)));
    net.broker_mut(b(4))
        .install_pending_adv(a, m, Hop::Broker(b(5)), Some(b(3)));
    net.broker_mut(b(3))
        .install_pending_adv(a, m, Hop::Broker(b(4)), Some(b(2)));
    net.broker_mut(b(2))
        .install_pending_adv(a, m, Hop::Broker(b(3)), Some(b(1)));
    net.broker_mut(b(1))
        .install_pending_adv(a, m, Hop::Broker(b(2)), None);
    // Fix-ups: pull intersecting subscriptions toward the new
    // direction at every path broker.
    for (broker, toward) in [(1u32, 2u32), (2, 3), (3, 4), (4, 5)] {
        net.with_broker(b(broker), |br| ((), br.pull_subs_toward(a.id, b(toward))));
    }
    // Commit pass (source → target, as the state transfer walks).
    for i in 1..=5u32 {
        net.with_broker(b(i), |br| ((), br.commit_move(m)));
    }
}

#[test]
fn case1_offpath_subscriber_is_pulled_toward_new_location() {
    // B3 has an off-path branch to B6 hosting the subscriber: its
    // subscription's lasthop at B3 is B6 ∉ RouteS2T.
    let topo = Topology::from_edges(
        (1..=6).map(b).collect::<Vec<_>>(),
        vec![
            (b(1), b(2)),
            (b(2), b(3)),
            (b(3), b(4)),
            (b(4), b(5)),
            (b(3), b(6)),
        ],
    )
    .unwrap();
    let mut net = SyncNet::builder()
        .overlay(topo)
        .options(BrokerConfig::plain())
        .start();
    let a = Advertisement::new(AdvId::new(c(1), 0), range(0, 100));
    net.client_send(b(1), c(1), PubSubMsg::Advertise(a.clone()));
    let s = Subscription::new(SubId::new(c(2), 0), range(0, 100));
    net.client_send(b(6), c(2), PubSubMsg::Subscribe(s.clone()));
    // Pre-move: the subscription extends B6 → B3 → B2 → B1 (toward the
    // adv), but NOT toward B4/B5.
    assert!(net.broker(b(1)).prt().get(s.id).is_some());
    assert!(net.broker(b(4)).prt().get(s.id).is_none());

    reconfigure_adv_move(&mut net, &a);

    // Post-move: case 1 forwarded the subscription toward B5, so a
    // publication from the new location reaches the subscriber.
    net.client_send(
        b(5),
        c(1),
        PubSubMsg::Publish(PublicationMsg::new(
            PubId(1),
            c(1),
            Publication::new().with("x", 50),
        )),
    );
    let d = net.take_deliveries();
    assert_eq!(d.len(), 1, "off-path subscriber unreachable after move");
    assert_eq!(d[0].client, c(2));
    assert_eq!(d[0].broker, b(6));
}

#[test]
fn case2_stale_entry_toward_target_is_pruned_on_commit() {
    // The subscriber sits at B5 (the target side): pre-move its
    // subscription extends B5 → ... → B1 toward the adv; post-move
    // those entries are stale (the publisher is co-located now) and
    // the commit pass prunes them.
    let mut net = SyncNet::builder()
        .overlay(Topology::chain(5))
        .options(BrokerConfig::plain())
        .start();
    let a = Advertisement::new(AdvId::new(c(1), 0), range(0, 100));
    net.client_send(b(1), c(1), PubSubMsg::Advertise(a.clone()));
    let s = Subscription::new(SubId::new(c(2), 0), range(0, 100));
    net.client_send(b(5), c(2), PubSubMsg::Subscribe(s.clone()));
    // At B3 the entry's lasthop is B4 = RouteS2T.suc(B3): case 2.
    assert_eq!(
        net.broker(b(3)).prt().get(s.id).unwrap().lasthop,
        Hop::Broker(b(4))
    );

    reconfigure_adv_move(&mut net, &a);

    // "Unless sub intersects an advertisement besides adv, it is
    // removed from the PRT": no other adv exists, so the stale tail
    // B1..B4 is gone; only the access broker keeps the subscription.
    for i in 1..=4u32 {
        assert!(
            net.broker(b(i)).prt().get(s.id).is_none(),
            "stale case-2 entry kept at B{i}"
        );
    }
    assert!(net.broker(b(5)).prt().get(s.id).is_some());
    // Routing still works from the new location.
    net.client_send(
        b(5),
        c(1),
        PubSubMsg::Publish(PublicationMsg::new(
            PubId(1),
            c(1),
            Publication::new().with("x", 50),
        )),
    );
    assert_eq!(net.take_deliveries().len(), 1);
}

#[test]
fn case2_entry_kept_when_another_advertisement_justifies_it() {
    // Same as case 2, but a second (stationary) publisher at B1 also
    // intersects the subscription — the entries must survive the
    // commit-pass prune.
    let mut net = SyncNet::builder()
        .overlay(Topology::chain(5))
        .options(BrokerConfig::plain())
        .start();
    let a = Advertisement::new(AdvId::new(c(1), 0), range(0, 100));
    net.client_send(b(1), c(1), PubSubMsg::Advertise(a.clone()));
    let other = Advertisement::new(AdvId::new(c(9), 0), range(0, 100));
    net.client_send(b(1), c(9), PubSubMsg::Advertise(other));
    let s = Subscription::new(SubId::new(c(2), 0), range(0, 100));
    net.client_send(b(5), c(2), PubSubMsg::Subscribe(s.clone()));

    reconfigure_adv_move(&mut net, &a);

    // The stationary publisher still justifies the path entries.
    for i in 1..=5u32 {
        assert!(
            net.broker(b(i)).prt().get(s.id).is_some(),
            "entry wrongly pruned at B{i}"
        );
    }
    // And both directions still deliver.
    net.client_send(
        b(1),
        c(9),
        PubSubMsg::Publish(PublicationMsg::new(
            PubId(1),
            c(9),
            Publication::new().with("x", 10),
        )),
    );
    net.client_send(
        b(5),
        c(1),
        PubSubMsg::Publish(PublicationMsg::new(
            PubId(2),
            c(1),
            Publication::new().with("x", 20),
        )),
    );
    assert_eq!(net.take_deliveries().len(), 2);
}

#[test]
fn case3_subscription_from_source_direction_forwarded_onward() {
    // The subscriber sits at B1 (the source side) and its subscription
    // is also justified by a second advertisement hanging at B1: at B2
    // the entry's lasthop is B1 = RouteS2T.pre(B2): case 3. After the
    // move it must be forwarded toward B5.
    let mut net = SyncNet::builder()
        .overlay(Topology::chain(5))
        .options(BrokerConfig::plain())
        .start();
    let a = Advertisement::new(AdvId::new(c(1), 0), range(0, 100));
    net.client_send(b(1), c(1), PubSubMsg::Advertise(a.clone()));
    let other = Advertisement::new(AdvId::new(c(9), 0), range(50, 200));
    net.client_send(b(1), c(9), PubSubMsg::Advertise(other));
    let s = Subscription::new(SubId::new(c(2), 0), range(0, 100));
    net.client_send(b(1), c(2), PubSubMsg::Subscribe(s.clone()));
    // Pre-move the subscription never leaves B1 (both advs are local).
    assert!(net.broker(b(2)).prt().get(s.id).is_none());

    reconfigure_adv_move(&mut net, &a);

    // Case 1/3 fix-ups extended the subscription along the path.
    for i in 1..=5u32 {
        assert!(
            net.broker(b(i)).prt().get(s.id).is_some(),
            "case-3 subscription missing at B{i}"
        );
    }
    // A publication from the relocated publisher reaches B1's client.
    net.client_send(
        b(5),
        c(1),
        PubSubMsg::Publish(PublicationMsg::new(
            PubId(1),
            c(1),
            Publication::new().with("x", 60),
        )),
    );
    let d = net.take_deliveries();
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].broker, b(1));
}
