//! Differential suite for the batch ingestion path: on randomized
//! operation scripts, [`BrokerCore::handle_batch`] over each maximal
//! run of consecutive messages must produce exactly the effects of
//! folding [`BrokerCore::handle`] one message at a time — the same
//! flat effect sequence (hence the same client-delivery list and the
//! same per-neighbor message multisets) and the same final broker
//! state — including when movement transactions commit or abort
//! between batches while shadow (pending) routes are live.

use proptest::prelude::*;
use transmob_broker::{
    BrokerConfig, BrokerCore, BrokerOutput, Hop, OutputBatch, Parallelism, PubSubMsg,
};
use transmob_pubsub::{
    AdvId, Advertisement, BrokerId, ClientId, Filter, MoveId, PubId, Publication, PublicationMsg,
    SubId, Subscription,
};

const ATTRS: [&str; 3] = ["x", "y", "t"];
const WORDS: [&str; 5] = ["alpha", "alps", "beta", "al", ""];
const MOVE_SLOTS: u64 = 4;

/// One predicate spec: attribute, operator shape, operand seed.
type PredSpec = (usize, u8, i64);

fn build_filter(specs: &[PredSpec]) -> Filter {
    specs
        .iter()
        .fold(Filter::builder(), |b, &(ai, kind, v)| {
            let a = ATTRS[ai % ATTRS.len()];
            match kind % 8 {
                0 => b.ge(a, v),
                1 => b.le(a, v),
                2 => b.ge(a, v).le(a, v + 15),
                3 => b.eq(a, v),
                4 => b.ne(a, v),
                5 => b.eq(a, WORDS[(v.unsigned_abs() as usize) % WORDS.len()]),
                6 => b.prefix(a, WORDS[(v.unsigned_abs() as usize) % WORDS.len()]),
                _ => b.any(a),
            }
        })
        .build()
}

fn arb_filter() -> impl Strategy<Value = Vec<PredSpec>> {
    proptest::collection::vec((0usize..3, 0u8..8, -30i64..30), 1..4)
}

/// One step of the randomized script. `Subscribe`/`Advertise` resolve
/// to ids derived from the script position, so re-issue-with-new-filter
/// protocol violations cannot arise; retractions may reference absent
/// ids on purpose (the anomaly path must also fold identically).
#[derive(Clone, Debug)]
enum OpSpec {
    Publish(i64, i64, usize),
    Subscribe(Vec<PredSpec>),
    Unsubscribe(u64),
    Advertise(Vec<PredSpec>),
    Unadvertise(u64),
    Commit(u64),
    Abort(u64),
}

/// Publications dominate (6 of 12 kind slots) so the amortized
/// publish-run path sees real multi-element runs; commits/aborts land
/// between them.
fn arb_op() -> impl Strategy<Value = OpSpec> {
    (
        0u8..12,
        -30i64..30,
        -30i64..30,
        0usize..WORDS.len(),
        arb_filter(),
        0u64..30,
    )
        .prop_map(|(kind, x, y, w, specs, slot)| match kind {
            0..=5 => OpSpec::Publish(x, y, w),
            6 => OpSpec::Subscribe(specs),
            7 => OpSpec::Unsubscribe(slot),
            8 => OpSpec::Advertise(specs),
            9 => OpSpec::Unadvertise(slot % 8),
            10 => OpSpec::Commit(slot % MOVE_SLOTS),
            _ => OpSpec::Abort(slot % MOVE_SLOTS),
        })
}

/// Resolves a script step at position `i` into either a routable
/// message or a movement-transaction boundary.
enum Resolved {
    Msg(PubSubMsg),
    Commit(MoveId),
    Abort(MoveId),
}

fn resolve(op: &OpSpec, i: usize) -> Resolved {
    match op {
        OpSpec::Publish(x, y, w) => Resolved::Msg(PubSubMsg::Publish(PublicationMsg::new(
            PubId(i as u64),
            ClientId(1),
            Publication::new()
                .with("x", *x)
                .with("y", *y)
                .with("t", WORDS[*w]),
        ))),
        OpSpec::Subscribe(specs) => Resolved::Msg(PubSubMsg::Subscribe(Subscription::new(
            SubId::new(ClientId(1000 + i as u64), 0),
            build_filter(specs),
        ))),
        OpSpec::Unsubscribe(slot) => {
            Resolved::Msg(PubSubMsg::Unsubscribe(SubId::new(ClientId(*slot), 0)))
        }
        OpSpec::Advertise(specs) => Resolved::Msg(PubSubMsg::Advertise(Advertisement::new(
            AdvId::new(ClientId(2000 + i as u64), 0),
            build_filter(specs),
        ))),
        OpSpec::Unadvertise(slot) => Resolved::Msg(PubSubMsg::Unadvertise(AdvId::new(
            ClientId(9),
            *slot as u32,
        ))),
        OpSpec::Commit(slot) => Resolved::Commit(MoveId(*slot)),
        OpSpec::Abort(slot) => Resolved::Abort(MoveId(*slot)),
    }
}

/// A broker with local client subscriptions, an upstream advertisement,
/// and live pending (shadow) routes: every other subscription — and,
/// when `adv_move` is set, the advertisement itself — is mid-move
/// toward B3 under one of the `MOVE_SLOTS` transaction ids, so script
/// commits/aborts flip real routing state.
fn seeded(config: BrokerConfig, sub_filters: &[Vec<PredSpec>], adv_move: bool) -> BrokerCore {
    let mut core = BrokerCore::new(BrokerId(1), [BrokerId(2), BrokerId(3)], config);
    let adv = Advertisement::new(
        AdvId::new(ClientId(9), 0),
        Filter::builder().ge("x", -100).le("x", 100).build(),
    );
    core.handle(Hop::Broker(BrokerId(2)), PubSubMsg::Advertise(adv.clone()));
    for (i, specs) in sub_filters.iter().enumerate() {
        let cid = ClientId(i as u64);
        let sub = Subscription::new(SubId::new(cid, 0), build_filter(specs));
        core.handle(Hop::Client(cid), PubSubMsg::Subscribe(sub.clone()));
        if i % 2 == 0 {
            core.install_pending_sub(
                &sub,
                MoveId(i as u64 % MOVE_SLOTS),
                Hop::Broker(BrokerId(3)),
                None,
            );
        }
    }
    if adv_move {
        core.install_pending_adv(
            &adv,
            MoveId(MOVE_SLOTS - 1),
            Hop::Broker(BrokerId(3)),
            Some(BrokerId(2)),
        );
    }
    core
}

/// Runs the script both ways — folding `handle` per message vs.
/// `handle_batch` over maximal consecutive-message runs — applying the
/// same movement commits/aborts at the same boundaries on both cores.
fn run_both(
    config: BrokerConfig,
    sub_filters: &[Vec<PredSpec>],
    adv_move: bool,
    ops: &[OpSpec],
) -> (BrokerCore, Vec<BrokerOutput>, BrokerCore, Vec<BrokerOutput>) {
    let from = Hop::Broker(BrokerId(2));
    let mut folded = seeded(config, sub_filters, adv_move);
    let mut batched = folded.clone();
    let mut fold_out = Vec::new();
    let mut batch_out = Vec::new();
    let mut run: Vec<PubSubMsg> = Vec::new();
    let flush = |core: &mut BrokerCore, run: &mut Vec<PubSubMsg>, out: &mut Vec<_>| {
        if !run.is_empty() {
            out.extend(core.handle_batch(from, std::mem::take(run)).into_flat());
        }
    };
    for (i, op) in ops.iter().enumerate() {
        match resolve(op, i) {
            Resolved::Msg(m) => {
                fold_out.extend(folded.handle(from, m.clone()));
                run.push(m);
            }
            Resolved::Commit(mid) => {
                flush(&mut batched, &mut run, &mut batch_out);
                fold_out.extend(folded.commit_move(mid));
                batch_out.extend(batched.commit_move(mid));
            }
            Resolved::Abort(mid) => {
                flush(&mut batched, &mut run, &mut batch_out);
                fold_out.extend(folded.abort_move(mid));
                batch_out.extend(batched.abort_move(mid));
            }
        }
    }
    flush(&mut batched, &mut run, &mut batch_out);
    (folded, fold_out, batched, batch_out)
}

fn state_json(core: &BrokerCore) -> String {
    serde_json::to_string(core).expect("broker state serializes")
}

/// Case count for the parallel-vs-sequential schedule sweep. Scales
/// with `CHAOS_CASES` like the sim chaos tier, so the nightly-sized
/// chaos run also deepens this differential.
fn par_cases() -> u32 {
    std::env::var("CHAOS_CASES")
        .ok()
        .and_then(|s| s.parse::<u32>().ok())
        .map(|n| (n / 4).clamp(16, 4096))
        .unwrap_or(48)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Batching is a pure transport optimization: same flat effect
    /// sequence, same deliveries, same per-neighbor multisets, same
    /// final broker state as the one-message fold — across movement
    /// commits and aborts with live shadow routes.
    #[test]
    fn handle_batch_equals_fold(
        sub_filters in proptest::collection::vec(arb_filter(), 1..8),
        adv_move in any::<bool>(),
        ops in proptest::collection::vec(arb_op(), 1..40),
    ) {
        let (folded, fold_out, batched, batch_out) =
            run_both(BrokerConfig::plain(), &sub_filters, adv_move, &ops);
        // The flat sequences agree exactly; the grouped views below are
        // therefore the stated per-destination consequences, asserted
        // in the form the drivers consume them.
        prop_assert_eq!(&fold_out, &batch_out);
        let fold_view = OutputBatch::from_flat(fold_out);
        let batch_view = OutputBatch::from_flat(batch_out);
        prop_assert_eq!(fold_view.deliveries(), batch_view.deliveries());
        prop_assert_eq!(fold_view.per_neighbor(), batch_view.per_neighbor());
        prop_assert_eq!(state_json(&folded), state_json(&batched));
    }

    /// The same property under active covering, where subscribe and
    /// retract paths trigger quench/release cascades inside a batch.
    #[test]
    fn handle_batch_equals_fold_with_covering(
        sub_filters in proptest::collection::vec(arb_filter(), 1..6),
        ops in proptest::collection::vec(arb_op(), 1..30),
    ) {
        let (folded, fold_out, batched, batch_out) =
            run_both(BrokerConfig::covering(), &sub_filters, false, &ops);
        prop_assert_eq!(&fold_out, &batch_out);
        prop_assert_eq!(state_json(&folded), state_json(&batched));
    }

    /// Chunked batching composes: splitting one message stream into
    /// arbitrary consecutive chunks of `handle_batch` calls yields the
    /// maximal-batch result (associativity of the ingestion path).
    #[test]
    fn batch_splitting_is_associative(
        sub_filters in proptest::collection::vec(arb_filter(), 1..6),
        ops in proptest::collection::vec(arb_op(), 1..30),
        chunk in 1usize..7,
    ) {
        let from = Hop::Broker(BrokerId(2));
        let msgs: Vec<PubSubMsg> = ops
            .iter()
            .enumerate()
            .filter_map(|(i, op)| match resolve(op, i) {
                Resolved::Msg(m) => Some(m),
                _ => None,
            })
            .collect();
        let mut whole = seeded(BrokerConfig::plain(), &sub_filters, false);
        let mut split = whole.clone();
        let whole_out = whole.handle_batch(from, msgs.clone()).into_flat();
        let mut split_out = Vec::new();
        for c in msgs.chunks(chunk) {
            split_out.extend(split.handle_batch(from, c.to_vec()).into_flat());
        }
        prop_assert_eq!(whole_out, split_out);
        prop_assert_eq!(state_json(&whole), state_json(&split));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(par_cases()))]

    /// A broker configured for sharded tables and the parallel matching
    /// stage produces exactly the outputs and routing state of the
    /// sequential default over randomized movement schedules — commits
    /// and aborts between batches, live shadow routes, covering off and
    /// on both exercised by the other properties. `Parallelism` must be
    /// invisible to everything but the clock.
    #[test]
    fn parallel_config_equals_sequential(
        sub_filters in proptest::collection::vec(arb_filter(), 1..8),
        adv_move in any::<bool>(),
        ops in proptest::collection::vec(arb_op(), 1..40),
    ) {
        let (sfold, sfold_out, _sbatch, sbatch_out) =
            run_both(BrokerConfig::plain(), &sub_filters, adv_move, &ops);
        let par = BrokerConfig::plain().with_parallelism(Parallelism::sharded(4, 2));
        let (pfold, pfold_out, pbatch, pbatch_out) =
            run_both(par, &sub_filters, adv_move, &ops);
        prop_assert_eq!(&pfold_out, &sfold_out);
        prop_assert_eq!(&pbatch_out, &sbatch_out);
        prop_assert_eq!(pfold.prt(), sfold.prt());
        prop_assert_eq!(pfold.srt(), sfold.srt());
        prop_assert_eq!(pbatch.prt(), sfold.prt());
        prop_assert_eq!(pbatch.srt(), sfold.srt());
    }
}

/// The publications of a message run, in order — what the pipelined
/// drivers feed to `prematch`.
fn contents_of(run: &[PubSubMsg]) -> Vec<Publication> {
    run.iter()
        .filter_map(|m| match m {
            PubSubMsg::Publish(p) => Some(p.content.clone()),
            _ => None,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The pipelined ingestion path — `prematch` under a fresh stamp,
    /// then `handle_batch_prematched` — is a pure transport
    /// optimization exactly like `handle_batch`: same flat effects and
    /// same final state as the one-message fold. Runs that mix
    /// subscribes/advertises between publishes invalidate the stamp
    /// *mid-batch*, so the internal staleness fallback is exercised by
    /// the same scripts.
    #[test]
    fn prematched_batch_equals_fold(
        sub_filters in proptest::collection::vec(arb_filter(), 1..8),
        adv_move in any::<bool>(),
        ops in proptest::collection::vec(arb_op(), 1..40),
    ) {
        let from = Hop::Broker(BrokerId(2));
        let mut folded = seeded(BrokerConfig::plain(), &sub_filters, adv_move);
        let mut batched = folded.clone();
        let mut fold_out = Vec::new();
        let mut batch_out = Vec::new();
        let mut run: Vec<PubSubMsg> = Vec::new();
        let flush = |core: &mut BrokerCore, run: &mut Vec<PubSubMsg>, out: &mut Vec<_>| {
            if !run.is_empty() {
                let msgs = std::mem::take(run);
                let mut pre = core.prematch(&contents_of(&msgs));
                out.extend(
                    core.handle_batch_prematched(from, msgs, Some(&mut pre))
                        .into_flat(),
                );
            }
        };
        for (i, op) in ops.iter().enumerate() {
            match resolve(op, i) {
                Resolved::Msg(m) => {
                    fold_out.extend(folded.handle(from, m.clone()));
                    run.push(m);
                }
                Resolved::Commit(mid) => {
                    flush(&mut batched, &mut run, &mut batch_out);
                    fold_out.extend(folded.commit_move(mid));
                    batch_out.extend(batched.commit_move(mid));
                }
                Resolved::Abort(mid) => {
                    flush(&mut batched, &mut run, &mut batch_out);
                    fold_out.extend(folded.abort_move(mid));
                    batch_out.extend(batched.abort_move(mid));
                }
            }
        }
        flush(&mut batched, &mut run, &mut batch_out);
        prop_assert_eq!(&fold_out, &batch_out);
        prop_assert_eq!(state_json(&folded), state_json(&batched));
    }

    /// The pipeline race, deterministically: routes are pre-computed,
    /// *then* a movement transaction commits or aborts (bumping the
    /// routing version — the apply stage's write-lock window), and
    /// only then is the batch applied with the now-stale routes. The
    /// stamp mismatch must force a recomputation: results equal the
    /// fold that never saw the stale routes.
    #[test]
    fn stale_prematch_recomputes_identically(
        sub_filters in proptest::collection::vec(arb_filter(), 1..8),
        adv_move in any::<bool>(),
        ops in proptest::collection::vec(arb_op(), 1..40),
    ) {
        let from = Hop::Broker(BrokerId(2));
        let mut folded = seeded(BrokerConfig::plain(), &sub_filters, adv_move);
        let mut batched = folded.clone();
        let mut fold_out = Vec::new();
        let mut batch_out = Vec::new();
        let mut run: Vec<PubSubMsg> = Vec::new();
        // Both cores apply the boundary mutation *before* the buffered
        // run; the batched side pre-computes the run's routes *before*
        // the mutation, so its stamp is stale whenever the commit or
        // abort touched the routing tables.
        let boundary = |folded: &mut BrokerCore,
                            batched: &mut BrokerCore,
                            run: &mut Vec<PubSubMsg>,
                            fold_out: &mut Vec<BrokerOutput>,
                            batch_out: &mut Vec<BrokerOutput>,
                            mid: Option<(MoveId, bool)>| {
            let msgs = std::mem::take(run);
            let mut pre = batched.prematch(&contents_of(&msgs));
            if let Some((m, commit)) = mid {
                if commit {
                    fold_out.extend(folded.commit_move(m));
                    batch_out.extend(batched.commit_move(m));
                } else {
                    fold_out.extend(folded.abort_move(m));
                    batch_out.extend(batched.abort_move(m));
                }
            }
            for msg in msgs.iter() {
                fold_out.extend(folded.handle(from, msg.clone()));
            }
            if !msgs.is_empty() {
                batch_out.extend(
                    batched
                        .handle_batch_prematched(from, msgs, Some(&mut pre))
                        .into_flat(),
                );
            }
        };
        for (i, op) in ops.iter().enumerate() {
            match resolve(op, i) {
                Resolved::Msg(m) => run.push(m),
                Resolved::Commit(mid) => boundary(
                    &mut folded, &mut batched, &mut run,
                    &mut fold_out, &mut batch_out, Some((mid, true)),
                ),
                Resolved::Abort(mid) => boundary(
                    &mut folded, &mut batched, &mut run,
                    &mut fold_out, &mut batch_out, Some((mid, false)),
                ),
            }
        }
        boundary(&mut folded, &mut batched, &mut run, &mut fold_out, &mut batch_out, None);
        prop_assert_eq!(&fold_out, &batch_out);
        prop_assert_eq!(state_json(&folded), state_json(&batched));
    }
}
