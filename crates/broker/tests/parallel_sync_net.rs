//! Driver-level differential for the synchronous network: a whole
//! overlay running on sharded/parallel match tables must deliver the
//! same notifications, generate the same traffic mix, and end in the
//! same routing state as the sequential default.

use transmob_broker::{BrokerConfig, Parallelism, PubSubMsg, SyncNet, Topology};
use transmob_pubsub::{
    AdvId, Advertisement, BrokerId, ClientId, Filter, PubId, Publication, PublicationMsg, SubId,
    Subscription,
};

fn b(i: u32) -> BrokerId {
    BrokerId(i)
}
fn c(i: u64) -> ClientId {
    ClientId(i)
}
fn range(a: &str, lo: i64, hi: i64) -> Filter {
    Filter::builder().ge(a, lo).le(a, hi).build()
}

/// Advertise from one end of a chain, subscribe along it on several
/// attributes, stream publications from both ends, unsubscribe some
/// rows mid-stream; returns (deliveries, traffic, per-broker state).
fn run(config: BrokerConfig) -> (Vec<String>, Vec<(String, u64)>, Vec<String>) {
    let mut net = SyncNet::builder()
        .overlay(Topology::chain(5))
        .options(config)
        .start();
    net.client_send(
        b(1),
        c(1),
        PubSubMsg::Advertise(Advertisement::new(
            AdvId::new(c(1), 0),
            Filter::builder().build(),
        )),
    );
    for i in 0..12u64 {
        let attr = ["x", "y", "z"][i as usize % 3];
        let broker = b(2 + (i % 4) as u32);
        net.client_send(
            broker,
            c(100 + i),
            PubSubMsg::Subscribe(Subscription::new(
                SubId::new(c(100 + i), 0),
                range(attr, i as i64 * 5, i as i64 * 5 + 40),
            )),
        );
    }
    for k in 0..20u64 {
        let attr = ["x", "y", "z"][k as usize % 3];
        net.client_send(
            b(1),
            c(1),
            PubSubMsg::Publish(PublicationMsg::new(
                PubId(k),
                c(1),
                Publication::new().with(attr, (k as i64 * 11) % 70),
            )),
        );
    }
    for i in (0..12u64).step_by(3) {
        net.client_send(b(2 + (i % 4) as u32), c(100 + i), {
            PubSubMsg::Unsubscribe(SubId::new(c(100 + i), 0))
        });
    }
    for k in 20..28u64 {
        net.client_send(
            b(1),
            c(1),
            PubSubMsg::Publish(PublicationMsg::new(
                PubId(k),
                c(1),
                Publication::new()
                    .with("x", (k as i64 * 13) % 70)
                    .with("y", (k as i64 * 17) % 70),
            )),
        );
    }
    let deliveries = net.deliveries().iter().map(|d| format!("{d:?}")).collect();
    let traffic = net
        .traffic()
        .iter()
        .map(|(k, n)| (format!("{k:?}"), *n))
        .collect();
    // Serialized form covers the rows (the index is derived state and
    // intentionally differs by layout).
    let state = net
        .brokers()
        .map(|(id, core)| {
            format!(
                "{id:?}: {} {}",
                serde_json::to_string(core.prt()).unwrap(),
                serde_json::to_string(core.srt()).unwrap()
            )
        })
        .collect();
    (deliveries, traffic, state)
}

#[test]
fn sync_net_is_identical_under_parallel_config() {
    let seq = run(BrokerConfig::plain());
    let par = run(BrokerConfig::plain().with_parallelism(Parallelism::sharded(4, 2)));
    assert!(!seq.0.is_empty(), "scenario must deliver notifications");
    assert_eq!(seq.0, par.0, "deliveries diverged");
    assert_eq!(seq.1, par.1, "traffic mix diverged");
    assert_eq!(seq.2, par.2, "routing state diverged");
}

#[test]
fn sync_net_covering_is_identical_under_parallel_config() {
    let seq = run(BrokerConfig::covering());
    let par = run(BrokerConfig::covering().with_parallelism(Parallelism::sharded(3, 2)));
    assert_eq!(seq.0, par.0, "deliveries diverged");
    assert_eq!(seq.1, par.1, "traffic mix diverged");
    assert_eq!(seq.2, par.2, "routing state diverged");
}
