//! Differential oracle for the counting match index behind `Srt`/`Prt`:
//! on randomized filter tables — including pending (shadow) routes and
//! insert → remove → re-insert churn — the indexed queries must return
//! exactly what the linear reference scans return.
//!
//! The routing layer also cross-checks every indexed query against the
//! scan via `debug_assert_eq!`; this test states the property
//! explicitly so it keeps holding in release builds too.

use proptest::prelude::*;
use transmob_broker::{Hop, Parallelism, PendingRoute, Prt, Srt};
use transmob_pubsub::{
    AdvId, Advertisement, BrokerId, ClientId, Filter, MoveId, Publication, SubId, Subscription,
};

const ATTRS: [&str; 3] = ["x", "y", "t"];
const WORDS: [&str; 5] = ["alpha", "alps", "beta", "al", ""];

/// One predicate spec: attribute, operator shape, operand seed.
type PredSpec = (usize, u8, i64);

fn apply_spec(
    b: transmob_pubsub::FilterBuilder,
    (ai, kind, v): PredSpec,
) -> transmob_pubsub::FilterBuilder {
    let a = ATTRS[ai % ATTRS.len()];
    match kind % 8 {
        0 => b.ge(a, v),
        1 => b.le(a, v),
        2 => b.ge(a, v).le(a, v + 15),
        3 => b.eq(a, v),
        4 => b.ne(a, v),
        5 => b.eq(a, WORDS[(v.unsigned_abs() as usize) % WORDS.len()]),
        6 => b.prefix(a, WORDS[(v.unsigned_abs() as usize) % WORDS.len()]),
        _ => b.any(a),
    }
}

fn build_filter(specs: &[PredSpec]) -> Filter {
    specs
        .iter()
        .fold(Filter::builder(), |b, s| apply_spec(b, *s))
        .build()
}

fn arb_filter() -> impl Strategy<Value = Vec<PredSpec>> {
    proptest::collection::vec((0usize..3, 0u8..8, -30i64..30), 1..4)
}

/// A churn step over the table: insert under a sequence id, remove a
/// (possibly absent) id, or tag a row with a pending route.
fn arb_steps() -> impl Strategy<Value = Vec<(u8, u64, Vec<PredSpec>)>> {
    proptest::collection::vec((0u8..4, 0u64..12, arb_filter()), 1..30)
}

fn probe_pubs() -> Vec<Publication> {
    let mut out = vec![Publication::new()];
    for x in [-35i64, -10, 0, 7, 15, 29, 45] {
        out.push(Publication::new().with("x", x).with("y", -x));
    }
    for w in WORDS {
        out.push(Publication::new().with("t", w).with("x", 5));
    }
    out.push(
        Publication::new()
            .with("x", 3)
            .with("y", 3)
            .with("t", "alpha"),
    );
    out
}

/// Builds a PRT and an SRT by replaying the step sequence; steps 0/1
/// insert (sometimes colliding on the id, re-using the stored filter
/// so the duplicate path stays legal), step 2 removes, step 3 installs
/// a pending route.
fn replay(steps: &[(u8, u64, Vec<PredSpec>)]) -> (Prt, Srt) {
    let mut prt = Prt::new();
    let mut srt = Srt::new();
    for (i, (op, slot, specs)) in steps.iter().enumerate() {
        let sid = SubId::new(ClientId(*slot), 0);
        let aid = AdvId::new(ClientId(*slot), 0);
        match op % 4 {
            0 | 1 => {
                // Re-inserting an occupied id with a different filter is
                // a protocol violation the table reports; keep the
                // replay legal by only inserting into free slots.
                if prt.get(sid).is_none() {
                    let f = build_filter(specs);
                    prt.insert(Subscription::new(sid, f), Hop::Client(ClientId(*slot)));
                }
                if srt.get(aid).is_none() {
                    let f = build_filter(specs);
                    srt.insert(Advertisement::new(aid, f), Hop::Broker(BrokerId(2)));
                }
            }
            2 => {
                prt.remove(sid);
                srt.remove(aid);
            }
            _ => {
                if let Some(e) = prt.get_mut(sid) {
                    e.pending = Some(PendingRoute {
                        move_id: MoveId(i as u64),
                        lasthop: Hop::Broker(BrokerId(9)),
                    });
                }
                if let Some(e) = srt.get_mut(aid) {
                    e.pending = Some(PendingRoute {
                        move_id: MoveId(i as u64),
                        lasthop: Hop::Broker(BrokerId(9)),
                    });
                }
            }
        }
    }
    (prt, srt)
}

/// The same replay with the tables switched to a sharded layout and a
/// live worker pool (the parallel matching stage).
fn replay_parallel(steps: &[(u8, u64, Vec<PredSpec>)]) -> (Prt, Srt) {
    let (mut prt, mut srt) = replay(steps);
    prt.set_parallelism(Parallelism::sharded(4, 2));
    srt.set_parallelism(Parallelism::sharded(4, 2));
    (prt, srt)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Indexed publication matching ≡ the linear scan, after churn.
    #[test]
    fn prt_matching_equals_linear(steps in arb_steps()) {
        let (prt, _) = replay(&steps);
        for p in probe_pubs() {
            prop_assert_eq!(prt.matching(&p), prt.matching_linear(&p), "pub {}", p);
        }
    }

    /// Indexed overlap ≡ the linear scan on both tables, after churn.
    #[test]
    fn overlap_equals_linear(steps in arb_steps(), q in arb_filter()) {
        let (prt, srt) = replay(&steps);
        let query = build_filter(&q);
        prop_assert_eq!(prt.overlapping(&query), prt.overlapping_linear(&query));
        prop_assert_eq!(srt.overlapping(&query), srt.overlapping_linear(&query));
    }

    /// The joined route queries agree with the scans *and* carry the
    /// pending (shadow) hops of in-flight movements.
    #[test]
    fn route_queries_expose_pending_hops(steps in arb_steps(), q in arb_filter()) {
        let (prt, srt) = replay(&steps);
        for p in probe_pubs() {
            let routes = prt.matching_routes(&p);
            let ids: Vec<SubId> = routes.iter().map(|(id, _, _)| *id).collect();
            prop_assert_eq!(&ids, &prt.matching_linear(&p));
            for (id, active, pending) in routes {
                let e = prt.get(id).unwrap();
                prop_assert_eq!(active, e.lasthop);
                prop_assert_eq!(pending, e.pending.as_ref().map(|pd| pd.lasthop));
            }
        }
        let query = build_filter(&q);
        let routes = srt.overlapping_routes(&query);
        let ids: Vec<AdvId> = routes.iter().map(|(id, _, _)| *id).collect();
        prop_assert_eq!(&ids, &srt.overlapping_linear(&query));
        for (id, active, pending) in routes {
            let e = srt.get(id).unwrap();
            prop_assert_eq!(active, e.lasthop);
            prop_assert_eq!(pending, e.pending.as_ref().map(|pd| pd.lasthop));
        }
    }

    /// Indexed containment (`covering` / `covered_by`) ≡ the linear
    /// `Filter::covers` scans on both tables, after churn — including
    /// rows that carry pending (shadow) routes.
    #[test]
    fn containment_equals_linear(steps in arb_steps(), q in arb_filter()) {
        let (prt, srt) = replay(&steps);
        let query = build_filter(&q);
        prop_assert_eq!(prt.covering(&query), prt.covering_linear(&query));
        prop_assert_eq!(prt.covered_by(&query), prt.covered_by_linear(&query));
        prop_assert_eq!(srt.covering(&query), srt.covering_linear(&query));
        prop_assert_eq!(srt.covered_by(&query), srt.covered_by_linear(&query));
    }

    /// The containment answers are semantically right, not merely
    /// scan-consistent: every reported id really stands in the claimed
    /// `Filter::covers` relation with the query.
    #[test]
    fn containment_is_sound(steps in arb_steps(), q in arb_filter()) {
        let (prt, srt) = replay(&steps);
        let query = build_filter(&q);
        for id in prt.covering(&query) {
            prop_assert!(prt.get(id).unwrap().sub.filter.covers(&query));
        }
        for id in prt.covered_by(&query) {
            prop_assert!(query.covers(&prt.get(id).unwrap().sub.filter));
        }
        for id in srt.covering(&query) {
            prop_assert!(srt.get(id).unwrap().adv.filter.covers(&query));
        }
        for id in srt.covered_by(&query) {
            prop_assert!(query.covers(&srt.get(id).unwrap().adv.filter));
        }
    }

    /// Sharded tables answer every query family exactly like the
    /// sequential tables and the linear scans, after churn: the
    /// partitioned index is a pure layout change, never a semantic one.
    #[test]
    fn sharded_tables_agree_with_sequential_and_linear(
        steps in arb_steps(),
        q in arb_filter(),
    ) {
        let (prt, srt) = replay(&steps);
        let (pprt, psrt) = replay_parallel(&steps);
        for p in probe_pubs() {
            prop_assert_eq!(pprt.matching(&p), prt.matching_linear(&p), "pub {}", p);
        }
        let query = build_filter(&q);
        prop_assert_eq!(pprt.overlapping(&query), prt.overlapping_linear(&query));
        prop_assert_eq!(psrt.overlapping(&query), srt.overlapping_linear(&query));
        prop_assert_eq!(pprt.covering(&query), prt.covering_linear(&query));
        prop_assert_eq!(pprt.covered_by(&query), prt.covered_by_linear(&query));
        prop_assert_eq!(psrt.covering(&query), srt.covering_linear(&query));
        prop_assert_eq!(psrt.covered_by(&query), srt.covered_by_linear(&query));
    }

    /// The parallel matching stage (`matching_batch` over sharded
    /// tables) returns publication-for-publication exactly what the
    /// sequential batch sweep and the linear scans return.
    #[test]
    fn parallel_batch_equals_sequential_batch(steps in arb_steps()) {
        let (prt, _) = replay(&steps);
        let (pprt, _) = replay_parallel(&steps);
        let pubs = probe_pubs();
        let par = pprt.matching_batch(&pubs);
        let seq = prt.matching_batch(&pubs);
        prop_assert_eq!(&par, &seq);
        for (i, p) in pubs.iter().enumerate() {
            prop_assert_eq!(&par[i], &prt.matching_linear(p), "pub {}", p);
        }
    }

    /// Serde round-trip rebuilds an index that still agrees with the
    /// scans (crash-recovery path of the Sec. 3.5 persistence sketch).
    #[test]
    fn rebuilt_index_agrees_after_round_trip(steps in arb_steps(), q in arb_filter()) {
        let (prt, srt) = replay(&steps);
        let prt2: Prt = serde_json::from_str(&serde_json::to_string(&prt).unwrap()).unwrap();
        let srt2: Srt = serde_json::from_str(&serde_json::to_string(&srt).unwrap()).unwrap();
        prop_assert_eq!(&prt, &prt2);
        prop_assert_eq!(&srt, &srt2);
        let query = build_filter(&q);
        for p in probe_pubs() {
            prop_assert_eq!(prt2.matching(&p), prt.matching_linear(&p));
        }
        prop_assert_eq!(prt2.covering(&query), prt.covering_linear(&query));
        prop_assert_eq!(prt2.covered_by(&query), prt.covered_by_linear(&query));
        prop_assert_eq!(srt2.covering(&query), srt.covering_linear(&query));
        prop_assert_eq!(srt2.covered_by(&query), srt.covered_by_linear(&query));
    }
}
