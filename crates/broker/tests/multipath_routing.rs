//! Multi-path forwarding over cyclic overlays (DESIGN.md §15).
//!
//! - A ring overlay delivers every matching publication exactly once:
//!   the publication travels both arcs, and the subscriber's broker
//!   drops the second copy through its [`DedupWindow`].
//! - Differential oracle: the same clients and operations on a tree
//!   and on the same tree with extra (cycle-closing) edges produce
//!   identical delivered multisets.
//! - The dedup window is bounded: past its capacity it forgets whole
//!   generations, keeping at least the most recent `cap / 2` ids.
//! - Advertisement TTLs bound the residual flood budget.

use std::collections::BTreeMap;

use proptest::prelude::*;
use transmob_broker::{
    BrokerConfig, DedupWindow, Hop, OverlayBuilder, PubSubMsg, SyncNet, Topology, DEDUP_WINDOW_CAP,
};
use transmob_pubsub::{
    AdvId, Advertisement, BrokerId, ClientId, Filter, PubId, Publication, PublicationMsg, SubId,
    Subscription,
};

fn b(i: u32) -> BrokerId {
    BrokerId(i)
}

fn c(i: u64) -> ClientId {
    ClientId(i)
}

fn adv(client: u64, seq: u32, f: Filter) -> Advertisement {
    Advertisement::new(AdvId::new(c(client), seq), f)
}

fn sub(client: u64, seq: u32, f: Filter) -> Subscription {
    Subscription::new(SubId::new(c(client), seq), f)
}

fn range(lo: i64, hi: i64) -> Filter {
    Filter::builder().ge("x", lo).le("x", hi).build()
}

fn publish(net: &mut SyncNet, broker: BrokerId, client: u64, id: u64, x: i64) {
    net.client_send(
        broker,
        c(client),
        PubSubMsg::Publish(PublicationMsg::new(
            PubId(id),
            c(client),
            Publication::new().with("x", x),
        )),
    );
}

#[test]
fn ring_records_redundant_routes_and_delivers_exactly_once() {
    let mut net = SyncNet::builder().overlay(OverlayBuilder::ring(5)).start();
    net.client_send(b(1), c(1), PubSubMsg::Advertise(adv(1, 0, range(0, 100))));

    // The flood reaches every broker along both arcs; the broker
    // opposite the advertiser hears it twice and records the second
    // arrival as a redundant route.
    let with_alts = (1..=5)
        .filter(|i| {
            !net.broker(b(*i))
                .srt()
                .get(AdvId::new(c(1), 0))
                .expect("adv flooded everywhere")
                .alt_lasthops
                .is_empty()
        })
        .count();
    assert!(with_alts >= 1, "a ring must produce at least one alt route");

    net.client_send(b(3), c(2), PubSubMsg::Subscribe(sub(2, 0, range(0, 100))));
    for id in 0..20 {
        publish(&mut net, b(1), 1, id, (id as i64) % 100);
    }
    let deliveries = net.take_deliveries();
    let mut per_pub: BTreeMap<PubId, usize> = BTreeMap::new();
    for d in &deliveries {
        assert_eq!(d.client, c(2));
        *per_pub.entry(d.publication.id).or_insert(0) += 1;
    }
    assert_eq!(per_pub.len(), 20, "every publication delivered");
    assert!(
        per_pub.values().all(|&n| n == 1),
        "duplicate deliveries on the ring: {per_pub:?}"
    );
    // The second copy was dropped by a dedup window, not by luck.
    assert!(
        (1..=5).any(|i| !net.broker(b(i)).dedup_window().is_empty()),
        "multi-path forwarding must have armed the dedup windows"
    );
}

#[test]
fn surviving_arc_keeps_routing_when_one_arc_retracts() {
    // Retracting the primary route (the protocol event a broker death
    // on one arc degrades to) must promote the redundant one instead
    // of tearing the entry down.
    let mut net = SyncNet::builder().overlay(OverlayBuilder::ring(4)).start();
    net.client_send(b(1), c(1), PubSubMsg::Advertise(adv(1, 0, range(0, 100))));
    net.client_send(b(3), c(2), PubSubMsg::Subscribe(sub(2, 0, range(0, 100))));

    // B3 sits opposite B1: one route via B2, one via B4.
    let entry = net.broker(b(3)).srt().get(AdvId::new(c(1), 0)).unwrap();
    let primary = entry.lasthop;
    let Hop::Broker(primary_nb) = primary else {
        panic!("opposite broker cannot be anchored to the client");
    };
    assert_eq!(entry.alt_lasthops.len(), 1, "ring gives exactly one alt");

    // Retract the primary arc (as the repair path does when a broker
    // on it dies): the alt must be promoted, delivery must continue.
    let aid = AdvId::new(c(1), 0);
    net.with_broker(b(3), |core| {
        let out = core
            .handle_batch(Hop::Broker(primary_nb), vec![PubSubMsg::Unadvertise(aid)])
            .into_flat();
        ((), out)
    });
    let entry = net.broker(b(3)).srt().get(aid).unwrap();
    assert_ne!(entry.lasthop, primary, "alt promoted to primary");
    assert!(entry.alt_lasthops.is_empty());

    net.take_deliveries();
    publish(&mut net, b(1), 1, 7, 42);
    let deliveries = net.take_deliveries();
    assert_eq!(
        deliveries.iter().filter(|d| d.client == c(2)).count(),
        1,
        "delivery must survive on the remaining arc"
    );
}

#[test]
fn dedup_window_rotates_generations_past_capacity() {
    // cap 4 → generations of two ids each.
    let mut w = DedupWindow::with_capacity(4);
    assert!(w.insert(PubId(1)), "fresh id");
    assert!(w.insert(PubId(2)), "fresh id fills the generation");
    assert!(!w.insert(PubId(1)), "still inside the window");
    assert!(!w.insert(PubId(2)), "still inside the window");
    assert_eq!(w.len(), 2, "duplicate inserts do not grow the window");

    // {1, 2} rotated into the older generation; {3, 4} fill the
    // current one, and the second rotation forgets {1, 2} wholesale.
    assert!(w.insert(PubId(3)));
    assert!(!w.insert(PubId(1)), "older generation still remembered");
    assert!(w.insert(PubId(4)));
    assert!(!w.contains(PubId(1)), "rotated out");
    assert!(!w.contains(PubId(2)), "rotated out");
    assert!(w.contains(PubId(3)));
    assert!(w.contains(PubId(4)));
    assert_eq!(w.len(), 2);
    assert!(
        w.insert(PubId(1)),
        "a forgotten id is treated as fresh again (the documented \
         window contract: exactly-once holds within the window only)"
    );

    // The guaranteed memory horizon: an id survives at least the next
    // cap/2 - 1 distinct inserts, wherever it lands in a generation.
    let mut w = DedupWindow::with_capacity(8);
    for start in 0..4u64 {
        for pad in 0..start {
            w.insert(PubId(1000 + 10 * start + pad));
        }
        assert!(w.insert(PubId(start)), "fresh id {start}");
        for next in 0..3u64 {
            w.insert(PubId(2000 + 10 * start + next));
            assert!(w.contains(PubId(start)), "id {start} inside the horizon");
        }
    }

    assert_eq!(DedupWindow::default().capacity(), DEDUP_WINDOW_CAP);
}

#[test]
fn advertisement_ttl_bounds_the_flood() {
    let mut net = SyncNet::builder().overlay(Topology::chain(5)).start();
    let a = adv(1, 0, range(0, 10)).with_ttl(2);
    net.client_send(b(1), c(1), PubSubMsg::Advertise(a));
    // ttl=2 at B1: B2 receives ttl=1, B3 receives ttl=0 and stops.
    for i in 1..=3 {
        assert!(
            net.broker(b(i)).srt().get(AdvId::new(c(1), 0)).is_some(),
            "broker {i} inside the TTL horizon"
        );
    }
    for i in 4..=5 {
        assert!(
            net.broker(b(i)).srt().get(AdvId::new(c(1), 0)).is_none(),
            "broker {i} beyond the TTL horizon"
        );
    }
}

/// One generated workload: publishers advertise, subscribers
/// subscribe, publishers publish — all at arbitrary home brokers.
#[derive(Debug, Clone)]
struct Workload {
    /// (home, lo, hi) per publisher; client ids 1..=N.
    pubs: Vec<(u32, i64, i64)>,
    /// (home, lo, hi) per subscriber; client ids 100..=100+M.
    subs: Vec<(u32, i64, i64)>,
    /// (publisher index, value) publications, ids assigned in order.
    msgs: Vec<(usize, i64)>,
}

fn workload(brokers: u32) -> impl Strategy<Value = Workload> {
    let pub_s = (1..=brokers, 0i64..50, 0i64..50);
    let sub_s = (1..=brokers, 0i64..50, 0i64..50);
    (
        proptest::collection::vec(pub_s, 1..4),
        proptest::collection::vec(sub_s, 1..4),
        proptest::collection::vec((0usize..4, 0i64..100), 1..30),
    )
        .prop_map(|(pubs, subs, msgs)| Workload { pubs, subs, msgs })
}

/// Runs `w` on `net` and returns the delivered multiset as sorted
/// `(subscriber, publication id, publisher)` triples. `hops` differs
/// between acyclic and cyclic runs by design, so it is not compared.
fn run(net: &mut SyncNet, w: &Workload) -> Vec<(ClientId, PubId, ClientId)> {
    for (i, (home, lo, hi)) in w.pubs.iter().enumerate() {
        let client = i as u64 + 1;
        let f = range(*lo, (*lo).max(*hi));
        net.client_send(b(*home), c(client), PubSubMsg::Advertise(adv(client, 0, f)));
    }
    for (i, (home, lo, hi)) in w.subs.iter().enumerate() {
        let client = i as u64 + 100;
        let f = range(*lo, (*lo).max(*hi));
        net.client_send(b(*home), c(client), PubSubMsg::Subscribe(sub(client, 0, f)));
    }
    for (id, (pi, x)) in w.msgs.iter().enumerate() {
        let pi = pi % w.pubs.len();
        let (home, lo, hi) = w.pubs[pi];
        // Publications must conform to the publisher's advertisement
        // (the paper's model): clamp the value into the advertised
        // range. Routing equality is only promised for conforming
        // publications.
        let hi = lo.max(hi);
        let x = lo + x.rem_euclid(hi - lo + 1);
        publish(net, b(home), pi as u64 + 1, id as u64, x);
    }
    let mut got: Vec<_> = net
        .take_deliveries()
        .into_iter()
        .map(|d| (d.client, d.publication.id, d.publication.publisher))
        .collect();
    got.sort_unstable();
    got
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole differential: adding cycle-closing edges to a tree
    /// changes the paths but not the delivered multiset.
    #[test]
    fn cyclic_overlay_is_differentially_equal_to_the_tree(
        w in workload(6),
        edge_mask in 1u8..16,
    ) {
        const EXTRA_EDGES: [(u32, u32); 4] = [(1, 6), (2, 5), (1, 4), (3, 6)];
        let mut tree_net = SyncNet::builder()
            .overlay(Topology::chain(6))
            .start();
        let expected = run(&mut tree_net, &w);

        let mut cyclic = Topology::chain(6);
        for (i, (x, y)) in EXTRA_EDGES.iter().enumerate() {
            if edge_mask & (1 << i) != 0 {
                cyclic.add_edge(b(*x), b(*y)).expect("cycle-closing edge");
            }
        }
        prop_assert!(!cyclic.is_tree());
        let mut cyclic_net = SyncNet::builder().overlay(cyclic).start();
        prop_assert!(cyclic_net.broker(b(1)).config().multipath,
            "cyclic overlay must auto-enable multi-path forwarding");
        let got = run(&mut cyclic_net, &w);

        prop_assert_eq!(got, expected,
            "cyclic overlay delivered a different multiset than the acyclic oracle");
    }

    /// Tree overlays with multipath compiled in behave bit-identically
    /// to plain single-path forwarding (the dedup gate costs nothing
    /// when no duplicates can arise).
    #[test]
    fn multipath_on_a_tree_changes_nothing(w in workload(5)) {
        let mut plain = SyncNet::builder().overlay(Topology::chain(5)).start();
        let expected = run(&mut plain, &w);
        let mut forced = SyncNet::builder()
            .overlay(Topology::chain(5))
            .options(BrokerConfig::plain().with_multipath())
            .start();
        let got = run(&mut forced, &w);
        prop_assert_eq!(got, expected);
    }
}
