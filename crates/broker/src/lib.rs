//! # transmob-broker
//!
//! The content-based publish/subscribe *routing substrate* of the
//! transmob reproduction of *"Transactional Mobility in Distributed
//! Content-Based Publish/Subscribe Systems"* (ICDCS 2009): PADRES-style
//! brokers with Subscription/Publication Routing Tables, advertisement
//! flooding, subscription routing toward intersecting advertisements,
//! publication forwarding, and the (configurable) covering
//! optimization whose interaction with client mobility the paper
//! analyzes.
//!
//! The central type is [`BrokerCore`], a pure synchronous state
//! machine driven by either the discrete-event simulator
//! (`transmob-sim`), the threaded runtime (`transmob-runtime`), or the
//! instantaneous [`SyncNet`] used in tests. The transactional movement
//! protocols — the paper's contribution — live in `transmob-core` and
//! use the pending-configuration hooks this crate exposes
//! ([`BrokerCore::install_pending_sub`], [`BrokerCore::commit_move`],
//! [`BrokerCore::abort_move`], ...).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod broker;
pub mod messages;
pub mod overlay;
pub mod routing;
pub mod sync_net;
pub mod topology;
pub mod wire;

pub use broker::{
    BrokerConfig, BrokerCore, BrokerStats, CoveringMode, DedupWindow, PrematchedRoutes,
    DEDUP_WINDOW_CAP, MAX_PUB_HOPS,
};
pub use messages::{BrokerOutput, Hop, MsgKind, OutputBatch, PubSubMsg};
pub use overlay::OverlayBuilder;
pub use routing::{AdvEntry, PendingRoute, Prt, Srt, SubEntry};
pub use sync_net::{Delivery, SyncNet, SyncNetBuilder};
pub use topology::{Route, Topology, TopologyChange, TopologyError};
pub use transmob_pubsub::Parallelism;
