//! The unified overlay construction surface shared by every driver.
//!
//! [`OverlayBuilder`] collects the graph (edges or a preset shape) and
//! the optional routing-core [`Parallelism`] layout; each driver's
//! `builder()` entry point accepts it through `impl
//! Into<OverlayBuilder>`, so a plain [`Topology`] works everywhere a
//! builder does:
//!
//! ```
//! use transmob_broker::{BrokerConfig, OverlayBuilder, SyncNet, Topology};
//!
//! // Preset shape:
//! let net = SyncNet::builder()
//!     .overlay(OverlayBuilder::ring(5))
//!     .options(BrokerConfig::covering())
//!     .start();
//! assert!(!net.topology().is_tree());
//!
//! // A pre-built Topology converts implicitly:
//! let net = SyncNet::builder().overlay(Topology::chain(3)).start();
//! assert!(net.topology().is_tree());
//! ```

use transmob_pubsub::{BrokerId, Parallelism};

use crate::topology::{Topology, TopologyError};

/// Builder for a broker overlay: graph edges (or a preset shape) plus
/// an optional [`Parallelism`] layout applied to every broker's match
/// tables.
///
/// The node set is inferred from the edge endpoints; use
/// [`OverlayBuilder::broker`] for nodes that would otherwise be
/// isolated (which [`Topology::from_edges`] then rejects as
/// disconnected — the builder never constructs an invalid overlay
/// silently).
#[derive(Debug, Clone, Default)]
pub struct OverlayBuilder {
    built: Option<Topology>,
    brokers: Vec<BrokerId>,
    edges: Vec<(BrokerId, BrokerId)>,
    parallelism: Option<Parallelism>,
}

impl OverlayBuilder {
    /// An empty builder; add edges with [`OverlayBuilder::edge`].
    pub fn new() -> Self {
        OverlayBuilder::default()
    }

    /// A linear chain `B1 - B2 - ... - Bn` (ids 1..=n).
    pub fn chain(n: u32) -> Self {
        Topology::chain(n).into()
    }

    /// A star with `B1` at the centre and `B2..=Bn` as leaves.
    pub fn star(n: u32) -> Self {
        Topology::star(n).into()
    }

    /// A ring `B1 - ... - Bn - B1` (`n >= 3`): the smallest cyclic
    /// overlay. Drivers built over it switch to multi-path forwarding
    /// automatically.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn ring(n: u32) -> Self {
        Topology::ring(n).into()
    }

    /// Adds the undirected edge `a - b`; both endpoints join the node
    /// set.
    pub fn edge(mut self, a: BrokerId, b: BrokerId) -> Self {
        self.edges.push((a, b));
        self
    }

    /// Adds many undirected edges at once.
    pub fn edges(mut self, edges: impl IntoIterator<Item = (BrokerId, BrokerId)>) -> Self {
        self.edges.extend(edges);
        self
    }

    /// Declares a broker id explicitly (only needed when it appears in
    /// no edge).
    pub fn broker(mut self, b: BrokerId) -> Self {
        self.brokers.push(b);
        self
    }

    /// Applies a sharding / worker-pool layout to every broker built
    /// over this overlay (overrides the option struct's
    /// `parallelism`).
    pub fn parallelism(mut self, par: Parallelism) -> Self {
        self.parallelism = Some(par);
        self
    }

    /// Validates and builds the [`Topology`].
    ///
    /// # Errors
    ///
    /// Anything [`Topology::from_edges`] rejects: unknown endpoints
    /// (impossible here — endpoints imply nodes), duplicate edges or
    /// self-loops, an empty or disconnected graph.
    pub fn build(self) -> Result<Topology, TopologyError> {
        Ok(self.into_parts()?.0)
    }

    /// Builds the topology and surfaces the parallelism override for
    /// the driver to fold into its broker config.
    ///
    /// # Errors
    ///
    /// Same as [`OverlayBuilder::build`].
    pub fn into_parts(self) -> Result<(Topology, Option<Parallelism>), TopologyError> {
        if let Some(t) = self.built {
            return Ok((t, self.parallelism));
        }
        let mut brokers = self.brokers;
        for (a, b) in &self.edges {
            brokers.push(*a);
            brokers.push(*b);
        }
        let t = Topology::from_edges(brokers, self.edges)?;
        Ok((t, self.parallelism))
    }
}

impl From<Topology> for OverlayBuilder {
    fn from(t: Topology) -> Self {
        OverlayBuilder {
            built: Some(t),
            ..OverlayBuilder::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(n: u32) -> BrokerId {
        BrokerId(n)
    }

    #[test]
    fn edges_imply_nodes() {
        let t = OverlayBuilder::new()
            .edge(b(1), b(2))
            .edge(b(2), b(3))
            .build()
            .unwrap();
        assert_eq!(t.brokers().count(), 3);
        assert!(t.is_tree());
    }

    #[test]
    fn cycle_is_allowed() {
        let t = OverlayBuilder::new()
            .edges([(b(1), b(2)), (b(2), b(3)), (b(3), b(1))])
            .build()
            .unwrap();
        assert!(!t.is_tree());
    }

    #[test]
    fn isolated_broker_is_rejected() {
        let err = OverlayBuilder::new()
            .edge(b(1), b(2))
            .broker(b(9))
            .build()
            .unwrap_err();
        assert_eq!(err, TopologyError::Disconnected);
    }

    #[test]
    fn topology_passes_through_untouched() {
        let t = Topology::ring(4);
        let (t2, par) = OverlayBuilder::from(t.clone()).into_parts().unwrap();
        assert_eq!(t, t2);
        assert!(par.is_none());
    }

    #[test]
    fn parallelism_survives_into_parts() {
        let (_, par) = OverlayBuilder::chain(3)
            .parallelism(Parallelism::sharded(4, 2))
            .into_parts()
            .unwrap();
        assert!(par.is_some());
    }
}
