//! The broker routing state machine.
//!
//! [`BrokerCore`] is a *pure, synchronous* state machine: it owns the
//! SRT/PRT routing tables and maps one input message to a list of
//! [`BrokerOutput`] effects. It performs no I/O and holds no clock, so
//! the same implementation is hosted unchanged by the discrete-event
//! simulator (`transmob-sim`) and by the threaded runtime
//! (`transmob-runtime`).
//!
//! The routing semantics are the paper's (Sec. 2):
//!
//! - **Advertisements flood** the acyclic overlay: an advertisement is
//!   inserted into the SRT as an `{adv, lasthop}` pair and forwarded to
//!   all other neighbours.
//! - **Subscriptions route toward advertisements**: a subscription that
//!   intersects an advertisement is forwarded to that advertisement's
//!   lasthop and inserted into the PRT as a `{sub, lasthop}` pair.
//! - **Publications route toward subscribers**: a publication matching
//!   a PRT subscription is forwarded to the subscription's lasthop,
//!   hop-by-hop to the subscriber.
//!
//! The **covering optimization** (configurable per broker via
//! [`CoveringMode`]) quenches a subscription on links where a covering
//! subscription was already forwarded, and — in
//! [`CoveringMode::Active`], the behaviour the paper analyzes —
//! retracts previously-forwarded covered subscriptions when a covering
//! one is forwarded. Unsubscribing a covering subscription re-issues
//! the subscriptions it quenched; this is exactly the cascade that
//! makes the traditional covering-based movement protocol pathological
//! for mobile clients (paper Sec. 4.4 and Fig. 9/11).
//!
//! Two consistency-maintenance rules keep the tables minimal:
//!
//! - **pull**: inserting an advertisement forwards the already-known
//!   intersecting subscriptions toward it;
//! - **prune**: removing an advertisement retracts subscriptions from
//!   links where no other intersecting advertisement remains.
//!
//! Mobility support: entries can carry a *pending* configuration (the
//! shadow `rc(adv′)` of the paper's Sec. 4.4) installed under a
//! [`MoveId`]; publication forwarding honours both the active and the
//! pending lasthop during the prepare–commit window, and
//! [`BrokerCore::commit_move`] / [`BrokerCore::abort_move`] finish or
//! roll back the transaction. The movement *protocol* itself lives in
//! `transmob-core`.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};
use transmob_pubsub::{
    AdvId, Advertisement, BrokerId, ClientId, Filter, MoveId, Parallelism, Publication,
    PublicationMsg, SubId, Subscription,
};

use crate::messages::{BrokerOutput, Hop, MsgKind, OutputBatch, PubSubMsg};
use crate::routing::{PendingRoute, Prt, Srt};

/// How aggressively a broker applies the covering optimization to
/// subscription (or advertisement) propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CoveringMode {
    /// No covering: every subscription propagates toward every
    /// intersecting advertisement. This is the mode the reconfiguration
    /// protocol is evaluated with.
    #[default]
    Off,
    /// Quench new subscriptions covered by already-forwarded ones, but
    /// never retract previously-forwarded subscriptions.
    Lazy,
    /// Full covering as described in the paper: quench covered
    /// subscriptions *and* retract previously-forwarded subscriptions
    /// when a covering one is forwarded (and re-issue them when the
    /// covering one is removed).
    Active,
}

impl CoveringMode {
    /// Whether any quenching is performed.
    pub fn enabled(self) -> bool {
        !matches!(self, CoveringMode::Off)
    }
}

/// Static configuration of a broker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BrokerConfig {
    /// Covering mode for subscription propagation.
    pub sub_covering: CoveringMode,
    /// Covering mode for advertisement propagation.
    pub adv_covering: CoveringMode,
    /// Release behaviour when a covering subscription (or
    /// advertisement) is withdrawn. The paper's PADRES-era behaviour —
    /// "unsubscriptions of the root subscription induce subscriptions
    /// of the non-root subscriptions" — re-forwards everything the
    /// withdrawn entry covered, leaving any re-quenching to the
    /// downstream broker (`true`, the default for covering
    /// deployments). The precise variant (`false`) first checks
    /// whether another already-forwarded entry still covers the
    /// candidate; it is cheaper but requires a full table scan per
    /// candidate and is evaluated as an ablation.
    pub conservative_release: bool,
    /// Sharding / worker-pool configuration applied to both routing
    /// tables' match indexes. The default (one shard, zero workers) is
    /// the classic single-threaded index; any configuration produces
    /// identical routing decisions.
    pub parallelism: Parallelism,
}

impl BrokerConfig {
    /// Configuration with all covering disabled (reconfiguration
    /// protocol deployments).
    pub fn plain() -> Self {
        BrokerConfig::default()
    }

    /// Configuration with full covering enabled for both subscriptions
    /// and advertisements (traditional covering deployments), with the
    /// paper's conservative release behaviour.
    pub fn covering() -> Self {
        BrokerConfig {
            sub_covering: CoveringMode::Active,
            adv_covering: CoveringMode::Active,
            conservative_release: true,
            ..BrokerConfig::default()
        }
    }

    /// Full covering with the precise release ablation.
    pub fn covering_precise_release() -> Self {
        BrokerConfig {
            conservative_release: false,
            ..BrokerConfig::covering()
        }
    }

    /// The same configuration with the given match-index sharding.
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.parallelism = par;
        self
    }
}

/// Counters a broker keeps about its own processing, for metrics and
/// anomaly detection in tests.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BrokerStats {
    /// Messages handled, by kind.
    pub handled: BTreeMap<MsgKind, u64>,
    /// Messages that referenced unknown ids (tolerated, but counted;
    /// zero on healthy runs of the reconfiguration protocol).
    pub anomalies: u64,
    /// Transient re-route events: an entry adopted a new lasthop, or a
    /// retraction arrived from a stale direction. Expected while the
    /// make-before-break covering variant overlaps the old and new
    /// subscription trees; zero otherwise.
    pub reroutes: u64,
}

/// Routes pre-computed by [`BrokerCore::prematch`] for the publish
/// messages of one batch, in batch order, stamped with the routing
/// version they were matched under. The *match* stage of a pipelined
/// broker loop produces one of these under a read lock; the *apply*
/// stage consumes it under the write lock, falling back to fresh
/// matching if the stamp has gone stale.
#[derive(Debug, Clone)]
pub struct PrematchedRoutes {
    version: u64,
    /// Consumption cursor: publish runs of the batch take their rows
    /// in order across multiple flushes.
    pos: usize,
    routes: Vec<Vec<(SubId, Hop, Option<Hop>)>>,
}

/// The broker routing state machine. See the module docs for the
/// semantics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BrokerCore {
    id: BrokerId,
    neighbors: BTreeSet<BrokerId>,
    srt: Srt,
    prt: Prt,
    clients: BTreeSet<ClientId>,
    config: BrokerConfig,
    stats: BrokerStats,
    /// Out-of-band bookkeeping for pending (shadow) configurations:
    /// per (entry, move), the forwarding-set addition to apply at
    /// commit, and whether the entry was created by the transaction
    /// (so abort removes it).
    #[serde(with = "crate::routing::serde_pairs")]
    pending_meta: BTreeMap<PendingKey, PendingMeta>,
}

/// Key for out-of-band pending bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
enum PendingKey {
    Sub(SubId, MoveId),
    Adv(AdvId, MoveId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct PendingMeta {
    /// Neighbour to add to `sent_to` at commit (the old subscriber /
    /// publisher direction, over which later retractions travel).
    commit_sent_add: Option<BrokerId>,
    /// The entry did not exist before the transaction installed it.
    created: bool,
}

impl BrokerCore {
    /// Creates a broker with the given overlay neighbours.
    pub fn new(
        id: BrokerId,
        neighbors: impl IntoIterator<Item = BrokerId>,
        config: BrokerConfig,
    ) -> Self {
        let mut srt = Srt::new();
        let mut prt = Prt::new();
        srt.set_parallelism(config.parallelism);
        prt.set_parallelism(config.parallelism);
        BrokerCore {
            id,
            neighbors: neighbors.into_iter().collect(),
            srt,
            prt,
            clients: BTreeSet::new(),
            config,
            stats: BrokerStats::default(),
            pending_meta: BTreeMap::new(),
        }
    }

    /// This broker's id.
    pub fn id(&self) -> BrokerId {
        self.id
    }

    /// The overlay neighbours.
    pub fn neighbors(&self) -> &BTreeSet<BrokerId> {
        &self.neighbors
    }

    /// The broker configuration.
    pub fn config(&self) -> BrokerConfig {
        self.config
    }

    /// Read access to the SRT (tests and property checkers).
    pub fn srt(&self) -> &Srt {
        &self.srt
    }

    /// Read access to the PRT (tests and property checkers).
    pub fn prt(&self) -> &Prt {
        &self.prt
    }

    /// Processing statistics.
    pub fn stats(&self) -> &BrokerStats {
        &self.stats
    }

    /// Registers a locally attached client.
    pub fn attach_client(&mut self, c: ClientId) {
        self.clients.insert(c);
    }

    /// Unregisters a locally attached client. Routing entries issued by
    /// the client are *not* removed; the mobility protocols manage
    /// them explicitly.
    pub fn detach_client(&mut self, c: ClientId) {
        self.clients.remove(&c);
    }

    /// Whether `c` is attached to this broker.
    pub fn has_client(&self, c: ClientId) -> bool {
        self.clients.contains(&c)
    }

    /// The attached clients.
    pub fn clients(&self) -> &BTreeSet<ClientId> {
        &self.clients
    }

    /// Handles one routing-layer message arriving from `from`.
    ///
    /// Thin wrapper over [`BrokerCore::handle_batch`] — the batch call
    /// is the one ingestion path; this flattens its single-element
    /// result.
    pub fn handle(&mut self, from: Hop, msg: PubSubMsg) -> Vec<BrokerOutput> {
        self.handle_batch(from, vec![msg]).into_flat()
    }

    /// Handles a batch of routing-layer messages that arrived from
    /// `from` in order, returning the combined effects grouped for
    /// per-destination flushing.
    ///
    /// Semantically equivalent to folding [`BrokerCore::handle`] over
    /// the batch and concatenating the outputs (publications do not
    /// mutate routing state, so a run of them commutes with nothing in
    /// between), but maximal runs of consecutive publications are
    /// matched through one amortized index sweep
    /// ([`Prt::matching_routes_batch`]) instead of one probe each.
    pub fn handle_batch(&mut self, from: Hop, msgs: Vec<PubSubMsg>) -> OutputBatch {
        self.handle_batch_prematched(from, msgs, None)
    }

    /// The routing-state version stamp guarding pre-computed routes
    /// (see [`Prt::routing_version`]).
    pub fn routing_version(&self) -> u64 {
        self.prt.routing_version()
    }

    /// Matches a batch's publications against the *current* routing
    /// state without mutating anything: the read-locked *match* stage
    /// of a pipelined broker loop. The result is stamped with
    /// [`BrokerCore::routing_version`]; the write-locked *apply* stage
    /// ([`BrokerCore::handle_batch_prematched`]) consumes the routes
    /// only while the stamp still matches, so a movement commit or
    /// subscription churn sneaking in between simply invalidates the
    /// pre-computation instead of corrupting routing.
    pub fn prematch(&self, contents: &[Publication]) -> PrematchedRoutes {
        PrematchedRoutes {
            version: self.prt.routing_version(),
            pos: 0,
            routes: self.prt.matching_routes_batch(contents),
        }
    }

    /// [`BrokerCore::handle_batch`], optionally consuming routes
    /// pre-computed by [`BrokerCore::prematch`] on the same
    /// publication sequence. Stale pre-computations (version stamp
    /// mismatch — the routing state mutated since the match stage,
    /// including *mid-batch* by a subscription in this very batch) are
    /// discarded and the affected runs re-matched; results are
    /// identical either way (asserted in debug builds).
    pub fn handle_batch_prematched(
        &mut self,
        from: Hop,
        msgs: Vec<PubSubMsg>,
        mut pre: Option<&mut PrematchedRoutes>,
    ) -> OutputBatch {
        // Deserialized cores rebuild their match indexes with the
        // default layout; re-apply the configured sharding lazily so
        // every ingestion path honours it.
        if self.prt.parallelism() != self.config.parallelism
            || self.srt.parallelism() != self.config.parallelism
        {
            self.srt.set_parallelism(self.config.parallelism);
            self.prt.set_parallelism(self.config.parallelism);
        }
        let mut batch = OutputBatch::new();
        let mut run: Vec<PublicationMsg> = Vec::new();
        for msg in msgs {
            *self.stats.handled.entry(msg.kind()).or_insert(0) += 1;
            match msg {
                PubSubMsg::Publish(p) => run.push(p),
                other => {
                    self.flush_publish_run(from, &mut run, &mut pre, &mut batch);
                    batch.extend(match other {
                        PubSubMsg::Advertise(a) => self.handle_advertise(from, a),
                        PubSubMsg::Unadvertise(id) => self.handle_unadvertise(from, id),
                        PubSubMsg::Subscribe(s) => self.handle_subscribe(from, s),
                        PubSubMsg::Unsubscribe(id) => self.handle_unsubscribe(from, id),
                        PubSubMsg::RepairAdv(a) => self.handle_repair_adv(from, a),
                        PubSubMsg::RepairSub(s) => self.handle_repair_sub(from, s),
                        PubSubMsg::Publish(_) => unreachable!("publications batched above"),
                    });
                }
            }
        }
        self.flush_publish_run(from, &mut run, &mut pre, &mut batch);
        batch
    }

    /// Routes an accumulated run of publications through one batch
    /// matching sweep — or through still-fresh pre-computed routes —
    /// emitting the same effects, in the same order, as routing them
    /// one by one.
    fn flush_publish_run(
        &mut self,
        from: Hop,
        run: &mut Vec<PublicationMsg>,
        pre: &mut Option<&mut PrematchedRoutes>,
        batch: &mut OutputBatch,
    ) {
        if run.is_empty() {
            return;
        }
        // Take the run's pre-computed routes if the stamp is still
        // current; drop the whole pre-computation the moment it goes
        // stale (the version only moves forward, so it cannot become
        // valid again).
        let taken = match pre {
            Some(p) if p.version == self.prt.routing_version() => {
                let rows = p.routes[p.pos..p.pos + run.len()].to_vec();
                p.pos += run.len();
                Some(rows)
            }
            _ => {
                *pre = None;
                None
            }
        };
        let routes = taken.unwrap_or_else(|| {
            let contents: Vec<_> = run.iter().map(|p| p.content.clone()).collect();
            match contents.len() {
                1 => vec![self.prt.matching_routes(&contents[0])],
                _ => self.prt.matching_routes_batch(&contents),
            }
        });
        #[cfg(debug_assertions)]
        {
            let contents: Vec<_> = run.iter().map(|p| p.content.clone()).collect();
            debug_assert_eq!(
                routes,
                self.prt.matching_routes_batch(&contents),
                "pre-computed routes diverged from the current routing state"
            );
        }
        for (p, routes_p) in run.drain(..).zip(routes) {
            batch.extend(Self::emit_publish(from, p, routes_p));
        }
    }

    // ----- subscriptions ---------------------------------------------

    fn handle_subscribe(&mut self, from: Hop, sub: Subscription) -> Vec<BrokerOutput> {
        let id = sub.id;
        if let Some(entry) = self.prt.get_mut(id) {
            if entry.sub.filter != sub.filter {
                debug_assert!(
                    false,
                    "subscription {id} re-issued with a different filter (kept {}, ignored {})",
                    entry.sub.filter, sub.filter
                );
                eprintln!(
                    "transmob-broker: ignoring re-subscription of {id} with a different filter; the original row is kept"
                );
            }
            if entry.lasthop != from {
                if Self::anchored_here(&self.clients, entry.lasthop) {
                    // The subscriber is attached HERE: the entry is
                    // authoritative and only a movement commit may
                    // re-point it. Adopting an overlay direction would
                    // let a later retraction on that link (e.g. an
                    // overlay-repair purge racing this re-propagation)
                    // annihilate the client's own subscription.
                    self.stats.reroutes += 1;
                } else {
                    // A re-route while the old and new subscription
                    // trees overlap (make-before-break, overlay
                    // repair): adopt the newest direction.
                    entry.lasthop = from;
                    self.stats.reroutes += 1;
                }
            }
        } else {
            self.prt.insert(sub, from);
        }
        self.propagate_sub(id)
    }

    /// Forwards subscription `id` toward every intersecting
    /// advertisement it has not reached yet, honouring covering.
    fn propagate_sub(&mut self, id: SubId) -> Vec<BrokerOutput> {
        let mut out = Vec::new();
        let Some(entry) = self.prt.get(id) else {
            return out;
        };
        let own_hop = entry.lasthop;
        let filter = entry.sub.filter.clone();
        // Collect the neighbours hosting (the direction of) intersecting
        // advertisements, in both the active and any pending
        // configuration.
        let mut targets: BTreeSet<BrokerId> = BTreeSet::new();
        for (_, active, pending) in self.srt.overlapping_routes(&filter) {
            for hop in [Some(active), pending].into_iter().flatten() {
                if let Hop::Broker(n) = hop {
                    if Hop::Broker(n) != own_hop {
                        targets.insert(n);
                    }
                }
            }
        }
        for n in targets {
            out.extend(self.forward_sub_to(id, n));
        }
        out
    }

    /// Forwards subscription `id` to neighbour `n` unless it was
    /// already sent or is quenched by covering; in active covering
    /// mode, retracts subscriptions it covers on that link.
    fn forward_sub_to(&mut self, id: SubId, n: BrokerId) -> Vec<BrokerOutput> {
        let mut out = Vec::new();
        let Some(entry) = self.prt.get(id) else {
            return out;
        };
        if entry.lasthop == Hop::Broker(n) || entry.sent_to.contains(&n) {
            return out;
        }
        let filter = entry.sub.filter.clone();
        if self.config.sub_covering.enabled() && self.sub_quenched_on(n, id, &filter) {
            return out;
        }
        let sub = entry.sub.clone();
        // unwrap: entry existence checked above
        self.prt.get_mut(id).unwrap().sent_to.insert(n);
        out.push(BrokerOutput::ToBroker(n, PubSubMsg::Subscribe(sub)));
        if self.config.sub_covering == CoveringMode::Active {
            // Retract previously-forwarded subscriptions now covered on
            // this link. The containment index enumerates the covered
            // candidates; the hop conditions are checked per survivor.
            let retract: Vec<SubId> = self
                .prt
                .covered_by(&filter)
                .into_iter()
                .filter(|oid| {
                    // unwrap: ids come straight out of the table's index
                    let e = self.prt.get(*oid).unwrap();
                    *oid != id && e.sent_to.contains(&n) && !e.sub.filter.covers(&filter)
                })
                .collect();
            for oid in retract {
                // unwrap: ids were just drawn from the table
                self.prt.get_mut(oid).unwrap().sent_to.remove(&n);
                out.push(BrokerOutput::ToBroker(n, PubSubMsg::Unsubscribe(oid)));
            }
        }
        out
    }

    /// Whether subscription `id` with `filter` is quenched on link `n`
    /// by some covering subscription already forwarded there.
    fn sub_quenched_on(&self, n: BrokerId, id: SubId, filter: &Filter) -> bool {
        self.prt.covering(filter).into_iter().any(|oid| {
            // unwrap: ids come straight out of the table's index
            let e = self.prt.get(oid).unwrap();
            oid != id && e.sent_to.contains(&n) && e.lasthop != Hop::Broker(n)
        })
    }

    /// Whether `hop` is a client currently attached to this broker —
    /// the one case where a routing entry's lasthop is ground truth
    /// rather than learned overlay state.
    fn anchored_here(clients: &BTreeSet<ClientId>, hop: Hop) -> bool {
        matches!(hop, Hop::Client(c) if clients.contains(&c))
    }

    fn handle_unsubscribe(&mut self, from: Hop, id: SubId) -> Vec<BrokerOutput> {
        let Some(entry) = self.prt.get(id) else {
            // Stale retraction: the entry was already removed by a
            // crossing retraction (idempotent outcome).
            self.stats.reroutes += 1;
            return Vec::new();
        };
        if entry.lasthop != from {
            // Unsubscriptions travel the reverse of the subscription
            // path; a mismatch means the entry was re-routed while the
            // retraction was in flight — ignore the stale retraction.
            self.stats.reroutes += 1;
            return Vec::new();
        }
        // unwrap: presence checked above
        let entry = self.prt.remove(id).unwrap();
        let mut out = Vec::new();
        for n in &entry.sent_to {
            out.push(BrokerOutput::ToBroker(*n, PubSubMsg::Unsubscribe(id)));
        }
        // Covering release: subscriptions quenched by the removed one
        // must now be forwarded.
        if self.config.sub_covering.enabled() {
            for n in &entry.sent_to {
                out.extend(self.release_quenched_subs(*n, Some(&entry.sub.filter)));
            }
        }
        out
    }

    /// Re-evaluates link `n` after `removed` was withdrawn from it: any
    /// subscription that needs the link (an intersecting advertisement
    /// lies that way) and has not been sent is forwarded now. This
    /// implements the covering-release cascade of the paper's
    /// pathological case.
    ///
    /// With `conservative_release` (the paper's behaviour) every
    /// candidate the withdrawn filter covered is re-forwarded, even if
    /// another covering subscription is still forwarded on the link —
    /// re-quenching is left to the downstream broker. The precise
    /// variant suppresses candidates still covered locally (the quench
    /// check inside `forward_sub_to`).
    fn release_quenched_subs(
        &mut self,
        n: BrokerId,
        removed: Option<&Filter>,
    ) -> Vec<BrokerOutput> {
        let mut out = Vec::new();
        let conservative = self.config.conservative_release && removed.is_some();
        // The containment index enumerates what the withdrawn filter
        // covered; without one, every row is a candidate.
        let covered: Vec<SubId> = match removed {
            Some(r) => self.prt.covered_by(r),
            None => self.prt.iter().map(|(id, _)| *id).collect(),
        };
        let candidates: Vec<SubId> = covered
            .into_iter()
            .filter(|id| {
                // unwrap: ids come straight out of the table's index
                let e = self.prt.get(*id).unwrap();
                e.lasthop != Hop::Broker(n) && !e.sent_to.contains(&n)
            })
            .collect();
        for id in candidates {
            // unwrap: candidate ids drawn from the table and the only
            // mutation below is forwarding on the same id
            let filter = self.prt.get(id).unwrap().sub.filter.clone();
            let needed = self
                .srt
                .overlapping_routes(&filter)
                .iter()
                .any(|(_, active, pending)| {
                    *active == Hop::Broker(n) || *pending == Some(Hop::Broker(n))
                });
            if !needed {
                continue;
            }
            if conservative {
                out.extend(self.forward_sub_unchecked(id, n));
            } else {
                out.extend(self.forward_sub_to(id, n));
            }
        }
        out
    }

    /// Forwards subscription `id` to `n` bypassing the quench check
    /// (conservative covering release).
    fn forward_sub_unchecked(&mut self, id: SubId, n: BrokerId) -> Vec<BrokerOutput> {
        let Some(entry) = self.prt.get_mut(id) else {
            return Vec::new();
        };
        if entry.lasthop == Hop::Broker(n) || !entry.sent_to.insert(n) {
            return Vec::new();
        }
        let sub = entry.sub.clone();
        vec![BrokerOutput::ToBroker(n, PubSubMsg::Subscribe(sub))]
    }

    // ----- advertisements --------------------------------------------

    fn handle_advertise(&mut self, from: Hop, adv: Advertisement) -> Vec<BrokerOutput> {
        let id = adv.id;
        if let Some(entry) = self.srt.get_mut(id) {
            if entry.adv.filter != adv.filter {
                debug_assert!(
                    false,
                    "advertisement {id} re-issued with a different filter (kept {}, ignored {})",
                    entry.adv.filter, adv.filter
                );
                eprintln!(
                    "transmob-broker: ignoring re-advertisement of {id} with a different filter; the original row is kept"
                );
            }
            if entry.lasthop != from {
                if Self::anchored_here(&self.clients, entry.lasthop) {
                    // Locally-anchored advertisement: authoritative,
                    // see the matching guard in `handle_subscribe`.
                    self.stats.reroutes += 1;
                } else {
                    entry.lasthop = from;
                    self.stats.reroutes += 1;
                }
            }
        } else {
            self.srt.insert(adv, from);
        }
        let mut out = self.propagate_adv(id);
        // Pull rule: forward known intersecting subscriptions toward
        // the new advertisement.
        if let Hop::Broker(nf) = from {
            out.extend(self.pull_subs_toward(id, nf));
        }
        out
    }

    /// Floods advertisement `id` to every neighbour it has not reached,
    /// honouring advertisement covering.
    fn propagate_adv(&mut self, id: AdvId) -> Vec<BrokerOutput> {
        let mut out = Vec::new();
        let Some(entry) = self.srt.get(id) else {
            return out;
        };
        let own_hop = entry.lasthop;
        let targets: Vec<BrokerId> = self
            .neighbors
            .iter()
            .copied()
            .filter(|n| Hop::Broker(*n) != own_hop && !entry.sent_to.contains(n))
            .collect();
        for n in targets {
            out.extend(self.forward_adv_to(id, n));
        }
        out
    }

    fn forward_adv_to(&mut self, id: AdvId, n: BrokerId) -> Vec<BrokerOutput> {
        let mut out = Vec::new();
        let Some(entry) = self.srt.get(id) else {
            return out;
        };
        if entry.lasthop == Hop::Broker(n) || entry.sent_to.contains(&n) {
            return out;
        }
        let filter = entry.adv.filter.clone();
        if self.config.adv_covering.enabled() && self.adv_quenched_on(n, id, &filter) {
            return out;
        }
        let adv = entry.adv.clone();
        // unwrap: entry existence checked above
        self.srt.get_mut(id).unwrap().sent_to.insert(n);
        out.push(BrokerOutput::ToBroker(n, PubSubMsg::Advertise(adv)));
        if self.config.adv_covering == CoveringMode::Active {
            let retract: Vec<AdvId> = self
                .srt
                .covered_by(&filter)
                .into_iter()
                .filter(|oid| {
                    // unwrap: ids come straight out of the table's index
                    let e = self.srt.get(*oid).unwrap();
                    *oid != id && e.sent_to.contains(&n) && !e.adv.filter.covers(&filter)
                })
                .collect();
            for oid in retract {
                // unwrap: ids were just drawn from the table
                self.srt.get_mut(oid).unwrap().sent_to.remove(&n);
                out.push(BrokerOutput::ToBroker(n, PubSubMsg::Unadvertise(oid)));
            }
        }
        out
    }

    fn adv_quenched_on(&self, n: BrokerId, id: AdvId, filter: &Filter) -> bool {
        self.srt.covering(filter).into_iter().any(|oid| {
            // unwrap: ids come straight out of the table's index
            let e = self.srt.get(oid).unwrap();
            oid != id && e.sent_to.contains(&n) && e.lasthop != Hop::Broker(n)
        })
    }

    fn handle_unadvertise(&mut self, from: Hop, id: AdvId) -> Vec<BrokerOutput> {
        let Some(entry) = self.srt.get(id) else {
            self.stats.reroutes += 1;
            return Vec::new();
        };
        if entry.lasthop != from {
            self.stats.reroutes += 1;
            return Vec::new();
        }
        // unwrap: presence checked above
        let entry = self.srt.remove(id).unwrap();
        let mut out = Vec::new();
        for n in &entry.sent_to {
            out.push(BrokerOutput::ToBroker(*n, PubSubMsg::Unadvertise(id)));
        }
        // Prune rule: subscriptions forwarded toward the removed
        // advertisement are retracted from that link when no other
        // intersecting advertisement remains there.
        if let Hop::Broker(nl) = entry.lasthop {
            out.extend(self.prune_subs_on_link(nl));
        }
        // Covering release for advertisements: previously-quenched
        // advertisements must now flood.
        if self.config.adv_covering.enabled() {
            let release_links: Vec<BrokerId> = entry.sent_to.iter().copied().collect();
            for n in release_links {
                out.extend(self.release_quenched_advs(n, Some(&entry.adv.filter)));
            }
        }
        out
    }

    /// Retracts subscriptions from link `n` when no intersecting
    /// advertisement (active or pending) remains in that direction.
    fn prune_subs_on_link(&mut self, n: BrokerId) -> Vec<BrokerOutput> {
        let mut out = Vec::new();
        let candidates: Vec<SubId> = self
            .prt
            .iter()
            .filter(|(_, e)| e.sent_to.contains(&n))
            .map(|(id, _)| *id)
            .collect();
        for id in candidates {
            out.extend(self.prune_sub_link(id, n));
        }
        out
    }

    /// Retracts subscription `id` from link `n` if no intersecting
    /// advertisement (active or pending) lies that way. Used by the
    /// prune rule and by movement-transaction rollback.
    pub fn prune_sub_link(&mut self, id: SubId, n: BrokerId) -> Vec<BrokerOutput> {
        let Some(entry) = self.prt.get(id) else {
            return Vec::new();
        };
        if !entry.sent_to.contains(&n) {
            return Vec::new();
        }
        let filter = entry.sub.filter.clone();
        let still_needed =
            self.srt
                .overlapping_routes(&filter)
                .iter()
                .any(|(_, active, pending)| {
                    *active == Hop::Broker(n) || *pending == Some(Hop::Broker(n))
                });
        if still_needed {
            return Vec::new();
        }
        // unwrap: presence checked above
        self.prt.get_mut(id).unwrap().sent_to.remove(&n);
        vec![BrokerOutput::ToBroker(n, PubSubMsg::Unsubscribe(id))]
    }

    fn release_quenched_advs(
        &mut self,
        n: BrokerId,
        removed: Option<&Filter>,
    ) -> Vec<BrokerOutput> {
        let mut out = Vec::new();
        let conservative = self.config.conservative_release && removed.is_some();
        let covered: Vec<AdvId> = match removed {
            Some(r) => self.srt.covered_by(r),
            None => self.srt.iter().map(|(id, _)| *id).collect(),
        };
        let candidates: Vec<AdvId> = covered
            .into_iter()
            .filter(|id| {
                // unwrap: ids come straight out of the table's index
                let e = self.srt.get(*id).unwrap();
                e.lasthop != Hop::Broker(n) && !e.sent_to.contains(&n)
            })
            .collect();
        for id in candidates {
            if conservative {
                out.extend(self.forward_adv_unchecked(id, n));
            } else {
                out.extend(self.forward_adv_to(id, n));
            }
        }
        out
    }

    /// Floods advertisement `id` to `n` bypassing the quench check
    /// (conservative covering release).
    fn forward_adv_unchecked(&mut self, id: AdvId, n: BrokerId) -> Vec<BrokerOutput> {
        let Some(entry) = self.srt.get_mut(id) else {
            return Vec::new();
        };
        if entry.lasthop == Hop::Broker(n) || !entry.sent_to.insert(n) {
            return Vec::new();
        }
        let adv = entry.adv.clone();
        vec![BrokerOutput::ToBroker(n, PubSubMsg::Advertise(adv))]
    }

    /// Pull rule: forwards every intersecting subscription toward
    /// neighbour `nf`, where advertisement `id` arrived from. Also used
    /// by the reconfiguration protocol (paper Sec. 4.4, PRT cases 1
    /// and 3) against a pending advertisement configuration.
    pub fn pull_subs_toward(&mut self, id: AdvId, nf: BrokerId) -> Vec<BrokerOutput> {
        let Some(entry) = self.srt.get(id) else {
            return Vec::new();
        };
        let filter = entry.adv.filter.clone();
        let mut out = Vec::new();
        let candidates: Vec<SubId> = self
            .prt
            .overlapping(&filter)
            .into_iter()
            .filter(|sid| {
                // unwrap: ids come straight out of the table's index
                let e = self.prt.get(*sid).unwrap();
                e.lasthop != Hop::Broker(nf) && !e.sent_to.contains(&nf)
            })
            .collect();
        for sid in candidates {
            out.extend(self.forward_sub_to(sid, nf));
        }
        out
    }

    // ----- overlay repair --------------------------------------------

    fn handle_repair_adv(&mut self, from: Hop, adv: Advertisement) -> Vec<BrokerOutput> {
        // Same idempotent insert-or-adopt semantics as a plain
        // advertisement — the lasthop adoption in `handle_advertise`
        // is exactly what makes a repair flood converge regardless of
        // whether it arrives before or after this broker ran its own
        // purge. The onward flood and the pulled subscriptions keep
        // the repair tag so repair traffic stays identifiable across
        // the overlay.
        Self::tag_repair(self.handle_advertise(from, adv))
    }

    fn handle_repair_sub(&mut self, from: Hop, sub: Subscription) -> Vec<BrokerOutput> {
        Self::tag_repair(self.handle_subscribe(from, sub))
    }

    /// Rewrites forward-direction propagation (advertise / subscribe)
    /// triggered by a repair message as repair variants; retractions
    /// pass through untouched.
    fn tag_repair(outputs: Vec<BrokerOutput>) -> Vec<BrokerOutput> {
        outputs
            .into_iter()
            .map(|o| match o {
                BrokerOutput::ToBroker(n, PubSubMsg::Advertise(a)) => {
                    BrokerOutput::ToBroker(n, PubSubMsg::RepairAdv(a))
                }
                BrokerOutput::ToBroker(n, PubSubMsg::Subscribe(s)) => {
                    BrokerOutput::ToBroker(n, PubSubMsg::RepairSub(s))
                }
                other => other,
            })
            .collect()
    }

    /// Applies an overlay repair at this broker after `dead` was
    /// declared dead: mutates the neighbour set (`new_peers` are the
    /// repair edges incident to this broker), purges every routing
    /// entry learned through the dead link *as a retraction cascade*
    /// (so prune and covering release propagate the cleanup through
    /// the whole surviving subtree), and pushes the surviving
    /// advertisements over each new edge as [`PubSubMsg::RepairAdv`].
    /// The receiving side pulls its matching subscriptions back as
    /// [`PubSubMsg::RepairSub`], so both directions converge once both
    /// endpoints of a new edge have run their repair — no handshake
    /// round-trip is needed.
    ///
    /// In covering modes the push deliberately skips the quench check:
    /// over-propagating across a repair edge is always safe (the
    /// downstream broker re-quenches), whereas quenching against
    /// not-yet-repaired state could suppress a needed route.
    ///
    /// Returns the effects plus the ids of movement transactions whose
    /// pending (shadow) configuration references the dead broker —
    /// those can no longer commit toward it and must be aborted by the
    /// movement layer.
    pub fn repair_neighbors(
        &mut self,
        dead: BrokerId,
        new_peers: &[BrokerId],
    ) -> (Vec<BrokerOutput>, Vec<MoveId>) {
        self.neighbors.remove(&dead);
        for p in new_peers {
            if *p != self.id {
                self.neighbors.insert(*p);
            }
        }
        // Movements whose shadow configuration routes via the dead
        // broker: collected before the purge, which may remove the
        // very entries holding them.
        let mut doomed: BTreeSet<MoveId> = BTreeSet::new();
        for (_, e) in self.srt.iter() {
            if let Some(p) = &e.pending {
                if p.lasthop == Hop::Broker(dead) {
                    doomed.insert(p.move_id);
                }
            }
        }
        for (_, e) in self.prt.iter() {
            if let Some(p) = &e.pending {
                if p.lasthop == Hop::Broker(dead) {
                    doomed.insert(p.move_id);
                }
            }
        }
        // Forwarding sets must stop referencing the dead link before
        // the purge cascades, so no retraction is addressed to it.
        let stale_advs: Vec<AdvId> = self
            .srt
            .iter()
            .filter(|(_, e)| e.sent_to.contains(&dead))
            .map(|(id, _)| *id)
            .collect();
        for id in stale_advs {
            // unwrap: ids drawn from the table just above
            self.srt.get_mut(id).unwrap().sent_to.remove(&dead);
        }
        let stale_subs: Vec<SubId> = self
            .prt
            .iter()
            .filter(|(_, e)| e.sent_to.contains(&dead))
            .map(|(id, _)| *id)
            .collect();
        for id in stale_subs {
            // unwrap: ids drawn from the table just above
            self.prt.get_mut(id).unwrap().sent_to.remove(&dead);
        }
        // Purge: withdraw every entry learned over the dead link
        // exactly as if the dead broker had retracted it. The
        // `lasthop == from` check in the retraction handlers holds by
        // construction, and the resulting cascade cleans the entry
        // from every surviving broker downstream.
        let mut out = Vec::new();
        let purge_advs: Vec<AdvId> = self
            .srt
            .iter()
            .filter(|(_, e)| e.lasthop == Hop::Broker(dead))
            .map(|(id, _)| *id)
            .collect();
        for id in purge_advs {
            out.extend(self.handle_unadvertise(Hop::Broker(dead), id));
        }
        let purge_subs: Vec<SubId> = self
            .prt
            .iter()
            .filter(|(_, e)| e.lasthop == Hop::Broker(dead))
            .map(|(id, _)| *id)
            .collect();
        for id in purge_subs {
            out.extend(self.handle_unsubscribe(Hop::Broker(dead), id));
        }
        // The purge may have dropped entries that carried pending
        // state; sweep the out-of-band bookkeeping so nothing leaks.
        let (srt, prt) = (&self.srt, &self.prt);
        self.pending_meta.retain(|k, _| match k {
            PendingKey::Sub(id, m) => prt
                .get(*id)
                .and_then(|e| e.pending.as_ref())
                .is_some_and(|p| p.move_id == *m),
            PendingKey::Adv(id, m) => srt
                .get(*id)
                .and_then(|e| e.pending.as_ref())
                .is_some_and(|p| p.move_id == *m),
        });
        // Re-propagate the surviving advertisements over each new
        // edge.
        for &p in new_peers {
            if p == self.id {
                continue;
            }
            let push: Vec<AdvId> = self
                .srt
                .iter()
                .filter(|(_, e)| e.lasthop != Hop::Broker(p) && !e.sent_to.contains(&p))
                .map(|(id, _)| *id)
                .collect();
            for id in push {
                // unwrap: ids drawn from the table just above
                let entry = self.srt.get_mut(id).unwrap();
                entry.sent_to.insert(p);
                let adv = entry.adv.clone();
                out.push(BrokerOutput::ToBroker(p, PubSubMsg::RepairAdv(adv)));
            }
        }
        (out, doomed.into_iter().collect())
    }

    // ----- publications ----------------------------------------------

    /// Turns one publication's matched routes into forwarding effects:
    /// deduplicated broker and client destinations, honouring both the
    /// active and pending hops and suppressing the arrival direction.
    fn emit_publish(
        from: Hop,
        p: PublicationMsg,
        routes: Vec<(SubId, Hop, Option<Hop>)>,
    ) -> Vec<BrokerOutput> {
        let mut broker_dests: BTreeSet<BrokerId> = BTreeSet::new();
        let mut client_dests: BTreeSet<ClientId> = BTreeSet::new();
        for (_, active, pending) in routes {
            for hop in [Some(active), pending].into_iter().flatten() {
                if hop == from {
                    continue;
                }
                match hop {
                    Hop::Broker(n) => {
                        broker_dests.insert(n);
                    }
                    Hop::Client(c) => {
                        client_dests.insert(c);
                    }
                }
            }
        }
        let mut out = Vec::new();
        for n in broker_dests {
            out.push(BrokerOutput::ToBroker(n, PubSubMsg::Publish(p.clone())));
        }
        for c in client_dests {
            out.push(BrokerOutput::Deliver(c, p.clone()));
        }
        out
    }

    // ----- movement-transaction support ------------------------------

    /// Installs the pending (shadow) configuration for a moving
    /// subscription at this broker: the paper's `rc(adv′)` copy,
    /// applied to a subscription. `new_lasthop` is the post-commit
    /// direction of the subscriber (`RouteS2T.suc(B)`, or the client at
    /// the target broker); `commit_sent_add` is the post-commit
    /// addition to the forwarding set (`RouteS2T.pre(B)` — the old
    /// subscriber direction, over which retractions must later travel).
    ///
    /// If the broker has no entry for the subscription (it was never
    /// propagated through here), a fresh entry is created and flagged
    /// so that [`BrokerCore::abort_move`] removes it entirely.
    pub fn install_pending_sub(
        &mut self,
        sub: &Subscription,
        move_id: MoveId,
        new_lasthop: Hop,
        commit_sent_add: Option<BrokerId>,
    ) {
        let created = self.prt.get(sub.id).is_none();
        if created {
            self.prt.insert(sub.clone(), new_lasthop);
        }
        // unwrap: entry exists (pre-existing or just inserted)
        let entry = self.prt.get_mut(sub.id).unwrap();
        entry.pending = Some(PendingRoute {
            move_id,
            lasthop: new_lasthop,
        });
        self.pending_meta.insert(
            PendingKey::Sub(sub.id, move_id),
            PendingMeta {
                commit_sent_add,
                created,
            },
        );
    }

    /// Installs the pending configuration for a moving advertisement;
    /// see [`BrokerCore::install_pending_sub`] for the parameters.
    pub fn install_pending_adv(
        &mut self,
        adv: &Advertisement,
        move_id: MoveId,
        new_lasthop: Hop,
        commit_sent_add: Option<BrokerId>,
    ) {
        let created = self.srt.get(adv.id).is_none();
        if created {
            self.srt.insert(adv.clone(), new_lasthop);
        }
        // unwrap: entry exists (pre-existing or just inserted)
        let entry = self.srt.get_mut(adv.id).unwrap();
        entry.pending = Some(PendingRoute {
            move_id,
            lasthop: new_lasthop,
        });
        self.pending_meta.insert(
            PendingKey::Adv(adv.id, move_id),
            PendingMeta {
                commit_sent_add,
                created,
            },
        );
    }

    /// Commits every pending configuration installed under `move_id`:
    /// the old routing configuration is replaced by the shadow one, the
    /// forwarding sets are re-oriented, and (for advertisement moves)
    /// subscriptions whose justification disappeared are pruned (the
    /// paper's PRT case 2).
    pub fn commit_move(&mut self, move_id: MoveId) -> Vec<BrokerOutput> {
        let mut out = Vec::new();
        let mut prune_links: BTreeSet<BrokerId> = BTreeSet::new();
        for id in self.srt.pending_for(move_id) {
            // unwrap: id came from pending_for on the same table
            let entry = self.srt.get_mut(id).unwrap();
            // unwrap: pending_for guarantees a pending config
            let pending = entry.pending.take().unwrap();
            let old_lasthop = entry.lasthop;
            entry.lasthop = pending.lasthop;
            if let Hop::Broker(nb) = pending.lasthop {
                entry.sent_to.remove(&nb);
            }
            let meta = self
                .pending_meta
                .remove(&PendingKey::Adv(id, move_id))
                .unwrap_or(PendingMeta {
                    commit_sent_add: None,
                    created: false,
                });
            if let Some(add) = meta.commit_sent_add {
                // An overlay repair may have removed the old
                // direction; never resurrect a link to a dead broker.
                if self.neighbors.contains(&add) {
                    entry.sent_to.insert(add);
                }
            }
            if !meta.created {
                if let Hop::Broker(old_n) = old_lasthop {
                    prune_links.insert(old_n);
                }
            }
        }
        for id in self.prt.pending_for(move_id) {
            // unwrap: id came from pending_for on the same table
            let entry = self.prt.get_mut(id).unwrap();
            // unwrap: pending_for guarantees a pending config
            let pending = entry.pending.take().unwrap();
            entry.lasthop = pending.lasthop;
            if let Hop::Broker(nb) = pending.lasthop {
                entry.sent_to.remove(&nb);
            }
            let meta = self
                .pending_meta
                .remove(&PendingKey::Sub(id, move_id))
                .unwrap_or(PendingMeta {
                    commit_sent_add: None,
                    created: false,
                });
            if let Some(add) = meta.commit_sent_add {
                if self.neighbors.contains(&add) {
                    entry.sent_to.insert(add);
                }
            }
        }
        // Prune subscriptions that pointed at the old advertisement
        // location (paper PRT case 2, realized as the generic prune).
        for n in prune_links {
            out.extend(self.prune_subs_on_link(n));
        }
        out
    }

    /// Rolls back every pending configuration installed under
    /// `move_id`: shadow configurations are dropped and entries created
    /// by the transaction are removed.
    pub fn abort_move(&mut self, move_id: MoveId) -> Vec<BrokerOutput> {
        for id in self.srt.pending_for(move_id) {
            let meta = self.pending_meta.remove(&PendingKey::Adv(id, move_id));
            if meta.is_some_and(|m| m.created) {
                self.srt.remove(id);
            } else if let Some(entry) = self.srt.get_mut(id) {
                entry.pending = None;
            }
        }
        for id in self.prt.pending_for(move_id) {
            let meta = self.pending_meta.remove(&PendingKey::Sub(id, move_id));
            if meta.is_some_and(|m| m.created) {
                self.prt.remove(id);
            } else if let Some(entry) = self.prt.get_mut(id) {
                entry.pending = None;
            }
        }
        Vec::new()
    }
}
