//! The broker routing state machine.
//!
//! [`BrokerCore`] is a *pure, synchronous* state machine: it owns the
//! SRT/PRT routing tables and maps one input message to a list of
//! [`BrokerOutput`] effects. It performs no I/O and holds no clock, so
//! the same implementation is hosted unchanged by the discrete-event
//! simulator (`transmob-sim`) and by the threaded runtime
//! (`transmob-runtime`).
//!
//! The routing semantics are the paper's (Sec. 2):
//!
//! - **Advertisements flood** the acyclic overlay: an advertisement is
//!   inserted into the SRT as an `{adv, lasthop}` pair and forwarded to
//!   all other neighbours.
//! - **Subscriptions route toward advertisements**: a subscription that
//!   intersects an advertisement is forwarded to that advertisement's
//!   lasthop and inserted into the PRT as a `{sub, lasthop}` pair.
//! - **Publications route toward subscribers**: a publication matching
//!   a PRT subscription is forwarded to the subscription's lasthop,
//!   hop-by-hop to the subscriber.
//!
//! The **covering optimization** (configurable per broker via
//! [`CoveringMode`]) quenches a subscription on links where a covering
//! subscription was already forwarded, and — in
//! [`CoveringMode::Active`], the behaviour the paper analyzes —
//! retracts previously-forwarded covered subscriptions when a covering
//! one is forwarded. Unsubscribing a covering subscription re-issues
//! the subscriptions it quenched; this is exactly the cascade that
//! makes the traditional covering-based movement protocol pathological
//! for mobile clients (paper Sec. 4.4 and Fig. 9/11).
//!
//! Two consistency-maintenance rules keep the tables minimal:
//!
//! - **pull**: inserting an advertisement forwards the already-known
//!   intersecting subscriptions toward it;
//! - **prune**: removing an advertisement retracts subscriptions from
//!   links where no other intersecting advertisement remains.
//!
//! Mobility support: entries can carry a *pending* configuration (the
//! shadow `rc(adv′)` of the paper's Sec. 4.4) installed under a
//! [`MoveId`]; publication forwarding honours both the active and the
//! pending lasthop during the prepare–commit window, and
//! [`BrokerCore::commit_move`] / [`BrokerCore::abort_move`] finish or
//! roll back the transaction. The movement *protocol* itself lives in
//! `transmob-core`.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};
use transmob_pubsub::fasthash::FastSet;
use transmob_pubsub::{
    AdvId, Advertisement, BrokerId, ClientId, Filter, MoveId, Parallelism, PubId, Publication,
    PublicationMsg, SubId, Subscription,
};

use crate::messages::{BrokerOutput, Hop, MsgKind, OutputBatch, PubSubMsg};
use crate::routing::{PendingRoute, Prt, Srt};

/// How aggressively a broker applies the covering optimization to
/// subscription (or advertisement) propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CoveringMode {
    /// No covering: every subscription propagates toward every
    /// intersecting advertisement. This is the mode the reconfiguration
    /// protocol is evaluated with.
    #[default]
    Off,
    /// Quench new subscriptions covered by already-forwarded ones, but
    /// never retract previously-forwarded subscriptions.
    Lazy,
    /// Full covering as described in the paper: quench covered
    /// subscriptions *and* retract previously-forwarded subscriptions
    /// when a covering one is forwarded (and re-issue them when the
    /// covering one is removed).
    Active,
}

impl CoveringMode {
    /// Whether any quenching is performed.
    pub fn enabled(self) -> bool {
        !matches!(self, CoveringMode::Off)
    }
}

/// Static configuration of a broker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BrokerConfig {
    /// Covering mode for subscription propagation.
    pub sub_covering: CoveringMode,
    /// Covering mode for advertisement propagation.
    pub adv_covering: CoveringMode,
    /// Release behaviour when a covering subscription (or
    /// advertisement) is withdrawn. The paper's PADRES-era behaviour —
    /// "unsubscriptions of the root subscription induce subscriptions
    /// of the non-root subscriptions" — re-forwards everything the
    /// withdrawn entry covered, leaving any re-quenching to the
    /// downstream broker (`true`, the default for covering
    /// deployments). The precise variant (`false`) first checks
    /// whether another already-forwarded entry still covers the
    /// candidate; it is cheaper but requires a full table scan per
    /// candidate and is evaluated as an ablation.
    pub conservative_release: bool,
    /// Sharding / worker-pool configuration applied to both routing
    /// tables' match indexes. The default (one shard, zero workers) is
    /// the classic single-threaded index; any configuration produces
    /// identical routing decisions.
    pub parallelism: Parallelism,
    /// Multi-path forwarding for cyclic overlays: duplicate
    /// advertisement/subscription arrivals are recorded as redundant
    /// routes (`alt_lasthops`), publications fan out along every known
    /// route, and a bounded [`DedupWindow`] keeps delivery exactly
    /// once. Off (the default) on trees, where the single-path
    /// behaviour is bit-identical to previous releases; drivers turn
    /// it on automatically when the topology contains a cycle.
    #[serde(default)]
    pub multipath: bool,
}

impl BrokerConfig {
    /// Configuration with all covering disabled (reconfiguration
    /// protocol deployments).
    pub fn plain() -> Self {
        BrokerConfig::default()
    }

    /// Configuration with full covering enabled for both subscriptions
    /// and advertisements (traditional covering deployments), with the
    /// paper's conservative release behaviour.
    pub fn covering() -> Self {
        BrokerConfig {
            sub_covering: CoveringMode::Active,
            adv_covering: CoveringMode::Active,
            conservative_release: true,
            ..BrokerConfig::default()
        }
    }

    /// Full covering with the precise release ablation.
    pub fn covering_precise_release() -> Self {
        BrokerConfig {
            conservative_release: false,
            ..BrokerConfig::covering()
        }
    }

    /// The same configuration with the given match-index sharding.
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.parallelism = par;
        self
    }

    /// The same configuration with multi-path forwarding enabled (for
    /// cyclic overlays).
    pub fn with_multipath(mut self) -> Self {
        self.multipath = true;
        self
    }
}

/// Number of publication ids each broker remembers for exactly-once
/// multi-path dedup. See [`DedupWindow`] for the sizing rationale.
pub const DEDUP_WINDOW_CAP: usize = 2048;

/// Hard upper bound on broker-to-broker hops a publication may travel
/// under multi-path forwarding. The dedup window terminates cycles in
/// every expected execution; the hop bound is the backstop that keeps
/// a publication finite even if the window were to thrash, at which
/// point the drop is counted as an anomaly.
pub const MAX_PUB_HOPS: u32 = 64;

/// Bounded exactly-once window over recently seen publication ids,
/// with generational eviction.
///
/// On a cyclic overlay a publication can reach a broker over more than
/// one path; the first arrival is forwarded/delivered and its id
/// recorded, later arrivals are dropped. The window keeps two
/// generations of `cap / 2` ids each: inserts fill the current
/// generation, and when it is full the older generation is forgotten
/// wholesale and the roles swap. The window therefore remembers
/// between `cap / 2` and `cap` ids, and an id is guaranteed
/// remembered for at least the next `cap / 2 - 1` *distinct*
/// publications traversing the broker — with [`DEDUP_WINDOW_CAP`] =
/// 2048, a duplicate only slips through if over 1023 distinct
/// publications pass between the two arrivals of one id. Duplicate
/// copies of one publication are separated by at most the overlay's
/// in-flight capacity (the publications admitted while the slower
/// copy finishes its alternate path), so the window only has to
/// out-last that interval, not the full history (DESIGN.md §15
/// documents the contract).
///
/// Sizing and layout are performance-critical: the insert sits on the
/// per-publication forwarding path of every multipath broker. The
/// generational design keeps it at two hashed probes with no
/// per-insert eviction bookkeeping (a strict FIFO pays probe + queue
/// traffic + per-insert removal for no protocol-level gain), and the
/// capacity keeps both generations' tables cache-resident — the probes
/// are random-access, so an oversized window turns every forward into
/// a cache miss, which is what the `dedup_gate` bench gate in
/// scripts/bench_check.sh would catch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DedupWindow {
    // Serialized sorted so the hash sets' iteration order never leaks
    // into checkpoint bytes.
    #[serde(with = "serde_sorted_ids")]
    cur: FastSet<PubId>,
    #[serde(with = "serde_sorted_ids")]
    old: FastSet<PubId>,
    cap: usize,
}

/// Serializes the dedup membership set in sorted order: the hash
/// set's iteration order must not leak into checkpoint bytes.
mod serde_sorted_ids {
    use serde::de::Deserializer;
    use serde::ser::Serializer;
    use serde::{Deserialize, Serialize};
    use transmob_pubsub::fasthash::FastSet;
    use transmob_pubsub::PubId;

    pub fn serialize<S: Serializer>(set: &FastSet<PubId>, ser: S) -> Result<S::Ok, S::Error> {
        let mut ids: Vec<PubId> = set.iter().copied().collect();
        ids.sort_unstable();
        ids.serialize(ser)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(de: D) -> Result<FastSet<PubId>, D::Error> {
        let ids: Vec<PubId> = Vec::deserialize(de)?;
        Ok(ids.into_iter().collect())
    }
}

impl Default for DedupWindow {
    fn default() -> Self {
        DedupWindow::with_capacity(DEDUP_WINDOW_CAP)
    }
}

impl DedupWindow {
    /// A window remembering at most `cap` ids, at least the most
    /// recent `cap / 2` (`cap >= 2`).
    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap >= 2, "dedup window needs capacity for a generation");
        DedupWindow {
            cur: FastSet::default(),
            old: FastSet::default(),
            cap,
        }
    }

    /// Records `id`, rotating the older generation out if the current
    /// one is full. Returns `true` when `id` was fresh (not currently
    /// in the window) — i.e. when the caller should process the
    /// publication rather than drop it as a duplicate.
    pub fn insert(&mut self, id: PubId) -> bool {
        if self.old.contains(&id) {
            return false;
        }
        if !self.cur.insert(id) {
            return false;
        }
        if self.cur.len() >= self.cap / 2 {
            std::mem::swap(&mut self.cur, &mut self.old);
            // clear() keeps the allocation, so after warm-up the
            // rotation allocates nothing.
            self.cur.clear();
        }
        true
    }

    /// Whether `id` is currently remembered.
    pub fn contains(&self, id: PubId) -> bool {
        self.cur.contains(&id) || self.old.contains(&id)
    }

    /// Number of ids currently remembered (at most the capacity).
    /// The generations are disjoint: an id remembered in the older one
    /// is never re-inserted into the current one.
    pub fn len(&self) -> usize {
        self.cur.len() + self.old.len()
    }

    /// Whether the window has seen nothing yet.
    pub fn is_empty(&self) -> bool {
        self.cur.is_empty() && self.old.is_empty()
    }

    /// The eviction capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

/// Counters a broker keeps about its own processing, for metrics and
/// anomaly detection in tests.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BrokerStats {
    /// Messages handled, by kind.
    pub handled: BTreeMap<MsgKind, u64>,
    /// Messages that referenced unknown ids (tolerated, but counted;
    /// zero on healthy runs of the reconfiguration protocol).
    pub anomalies: u64,
    /// Transient re-route events: an entry adopted a new lasthop, or a
    /// retraction arrived from a stale direction. Expected while the
    /// make-before-break covering variant overlaps the old and new
    /// subscription trees; zero otherwise.
    pub reroutes: u64,
}

/// Routes pre-computed by [`BrokerCore::prematch`] for the publish
/// messages of one batch, in batch order, stamped with the routing
/// version they were matched under. The *match* stage of a pipelined
/// broker loop produces one of these under a read lock; the *apply*
/// stage consumes it under the write lock, falling back to fresh
/// matching if the stamp has gone stale.
#[derive(Debug, Clone)]
pub struct PrematchedRoutes {
    version: u64,
    /// Consumption cursor: publish runs of the batch take their rows
    /// in order across multiple flushes.
    pos: usize,
    routes: Vec<Vec<(SubId, Hop, Option<Hop>)>>,
}

/// The broker routing state machine. See the module docs for the
/// semantics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BrokerCore {
    id: BrokerId,
    neighbors: BTreeSet<BrokerId>,
    srt: Srt,
    prt: Prt,
    clients: BTreeSet<ClientId>,
    config: BrokerConfig,
    stats: BrokerStats,
    /// Out-of-band bookkeeping for pending (shadow) configurations:
    /// per (entry, move), the forwarding-set addition to apply at
    /// commit, and whether the entry was created by the transaction
    /// (so abort removes it).
    #[serde(with = "crate::routing::serde_pairs")]
    pending_meta: BTreeMap<PendingKey, PendingMeta>,
    /// Exactly-once window for multi-path forwarding; only consulted
    /// when [`BrokerConfig::multipath`] is set, so tree deployments
    /// pay nothing for it.
    #[serde(default)]
    dedup: DedupWindow,
    /// Whether any PRT entry ever recorded a redundant route. Stays
    /// `false` on tree overlays even with `multipath` forced, letting
    /// the publication fan-out skip the per-route alt lookup. Never
    /// cleared: it is a fast-path gate, not an invariant.
    #[serde(default)]
    prt_alt_routes: bool,
}

/// Key for out-of-band pending bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
enum PendingKey {
    Sub(SubId, MoveId),
    Adv(AdvId, MoveId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct PendingMeta {
    /// Neighbour to add to `sent_to` at commit (the old subscriber /
    /// publisher direction, over which later retractions travel).
    commit_sent_add: Option<BrokerId>,
    /// The entry did not exist before the transaction installed it.
    created: bool,
}

impl BrokerCore {
    /// Creates a broker with the given overlay neighbours.
    pub fn new(
        id: BrokerId,
        neighbors: impl IntoIterator<Item = BrokerId>,
        config: BrokerConfig,
    ) -> Self {
        let mut srt = Srt::new();
        let mut prt = Prt::new();
        srt.set_parallelism(config.parallelism);
        prt.set_parallelism(config.parallelism);
        BrokerCore {
            id,
            neighbors: neighbors.into_iter().collect(),
            srt,
            prt,
            clients: BTreeSet::new(),
            config,
            stats: BrokerStats::default(),
            pending_meta: BTreeMap::new(),
            dedup: DedupWindow::default(),
            prt_alt_routes: false,
        }
    }

    /// This broker's id.
    pub fn id(&self) -> BrokerId {
        self.id
    }

    /// The overlay neighbours.
    pub fn neighbors(&self) -> &BTreeSet<BrokerId> {
        &self.neighbors
    }

    /// The broker configuration.
    pub fn config(&self) -> BrokerConfig {
        self.config
    }

    /// Read access to the SRT (tests and property checkers).
    pub fn srt(&self) -> &Srt {
        &self.srt
    }

    /// Read access to the PRT (tests and property checkers).
    pub fn prt(&self) -> &Prt {
        &self.prt
    }

    /// Processing statistics.
    pub fn stats(&self) -> &BrokerStats {
        &self.stats
    }

    /// Read access to the multi-path dedup window (tests and property
    /// checkers).
    pub fn dedup_window(&self) -> &DedupWindow {
        &self.dedup
    }

    /// Registers a locally attached client.
    pub fn attach_client(&mut self, c: ClientId) {
        self.clients.insert(c);
    }

    /// Unregisters a locally attached client. Routing entries issued by
    /// the client are *not* removed; the mobility protocols manage
    /// them explicitly.
    pub fn detach_client(&mut self, c: ClientId) {
        self.clients.remove(&c);
    }

    /// Whether `c` is attached to this broker.
    pub fn has_client(&self, c: ClientId) -> bool {
        self.clients.contains(&c)
    }

    /// The attached clients.
    pub fn clients(&self) -> &BTreeSet<ClientId> {
        &self.clients
    }

    /// Handles one routing-layer message arriving from `from`.
    ///
    /// Thin wrapper over [`BrokerCore::handle_batch`] — the batch call
    /// is the one ingestion path; this flattens its single-element
    /// result.
    pub fn handle(&mut self, from: Hop, msg: PubSubMsg) -> Vec<BrokerOutput> {
        self.handle_batch(from, vec![msg]).into_flat()
    }

    /// Handles a batch of routing-layer messages that arrived from
    /// `from` in order, returning the combined effects grouped for
    /// per-destination flushing.
    ///
    /// Semantically equivalent to folding [`BrokerCore::handle`] over
    /// the batch and concatenating the outputs (publications do not
    /// mutate routing state, so a run of them commutes with nothing in
    /// between), but maximal runs of consecutive publications are
    /// matched through one amortized index sweep
    /// ([`Prt::matching_routes_batch`]) instead of one probe each.
    pub fn handle_batch(&mut self, from: Hop, msgs: Vec<PubSubMsg>) -> OutputBatch {
        self.handle_batch_prematched(from, msgs, None)
    }

    /// The routing-state version stamp guarding pre-computed routes
    /// (see [`Prt::routing_version`]).
    pub fn routing_version(&self) -> u64 {
        self.prt.routing_version()
    }

    /// Matches a batch's publications against the *current* routing
    /// state without mutating anything: the read-locked *match* stage
    /// of a pipelined broker loop. The result is stamped with
    /// [`BrokerCore::routing_version`]; the write-locked *apply* stage
    /// ([`BrokerCore::handle_batch_prematched`]) consumes the routes
    /// only while the stamp still matches, so a movement commit or
    /// subscription churn sneaking in between simply invalidates the
    /// pre-computation instead of corrupting routing.
    pub fn prematch(&self, contents: &[Publication]) -> PrematchedRoutes {
        PrematchedRoutes {
            version: self.prt.routing_version(),
            pos: 0,
            routes: self.prt.matching_routes_batch(contents),
        }
    }

    /// [`BrokerCore::handle_batch`], optionally consuming routes
    /// pre-computed by [`BrokerCore::prematch`] on the same
    /// publication sequence. Stale pre-computations (version stamp
    /// mismatch — the routing state mutated since the match stage,
    /// including *mid-batch* by a subscription in this very batch) are
    /// discarded and the affected runs re-matched; results are
    /// identical either way (asserted in debug builds).
    pub fn handle_batch_prematched(
        &mut self,
        from: Hop,
        msgs: Vec<PubSubMsg>,
        mut pre: Option<&mut PrematchedRoutes>,
    ) -> OutputBatch {
        // Deserialized cores rebuild their match indexes with the
        // default layout; re-apply the configured sharding lazily so
        // every ingestion path honours it.
        if self.prt.parallelism() != self.config.parallelism
            || self.srt.parallelism() != self.config.parallelism
        {
            self.srt.set_parallelism(self.config.parallelism);
            self.prt.set_parallelism(self.config.parallelism);
        }
        let mut batch = OutputBatch::new();
        let mut run: Vec<PublicationMsg> = Vec::new();
        for msg in msgs {
            *self.stats.handled.entry(msg.kind()).or_insert(0) += 1;
            match msg {
                PubSubMsg::Publish(p) => run.push(p),
                other => {
                    self.flush_publish_run(from, &mut run, &mut pre, &mut batch);
                    batch.extend(match other {
                        PubSubMsg::Advertise(a) => self.handle_advertise(from, a),
                        PubSubMsg::Unadvertise(id) => self.handle_unadvertise(from, id),
                        PubSubMsg::Subscribe(s) => self.handle_subscribe(from, s),
                        PubSubMsg::Unsubscribe(id) => self.handle_unsubscribe(from, id),
                        PubSubMsg::RepairAdv(a) => self.handle_repair_adv(from, a),
                        PubSubMsg::RepairSub(s) => self.handle_repair_sub(from, s),
                        PubSubMsg::Publish(_) => unreachable!("publications batched above"),
                    });
                }
            }
        }
        self.flush_publish_run(from, &mut run, &mut pre, &mut batch);
        batch
    }

    /// Routes an accumulated run of publications through one batch
    /// matching sweep — or through still-fresh pre-computed routes —
    /// emitting the same effects, in the same order, as routing them
    /// one by one.
    fn flush_publish_run(
        &mut self,
        from: Hop,
        run: &mut Vec<PublicationMsg>,
        pre: &mut Option<&mut PrematchedRoutes>,
        batch: &mut OutputBatch,
    ) {
        if run.is_empty() {
            return;
        }
        // Take the run's pre-computed routes if the stamp is still
        // current; drop the whole pre-computation the moment it goes
        // stale (the version only moves forward, so it cannot become
        // valid again).
        let taken = match pre {
            Some(p) if p.version == self.prt.routing_version() => {
                let rows = p.routes[p.pos..p.pos + run.len()].to_vec();
                p.pos += run.len();
                Some(rows)
            }
            _ => {
                *pre = None;
                None
            }
        };
        let routes = taken.unwrap_or_else(|| {
            let contents: Vec<_> = run.iter().map(|p| p.content.clone()).collect();
            match contents.len() {
                1 => vec![self.prt.matching_routes(&contents[0])],
                _ => self.prt.matching_routes_batch(&contents),
            }
        });
        #[cfg(debug_assertions)]
        {
            let contents: Vec<_> = run.iter().map(|p| p.content.clone()).collect();
            debug_assert_eq!(
                routes,
                self.prt.matching_routes_batch(&contents),
                "pre-computed routes diverged from the current routing state"
            );
        }
        for (p, routes_p) in run.drain(..).zip(routes) {
            if self.config.multipath && !self.dedup.insert(p.id) {
                // Already forwarded and delivered here via another
                // path of the cyclic overlay: drop the duplicate
                // entirely. (The pre-computed routes row was consumed
                // by the zip, keeping the cursor aligned.)
                continue;
            }
            batch.extend(self.emit_publish(from, p, routes_p));
        }
    }

    // ----- subscriptions ---------------------------------------------

    fn handle_subscribe(&mut self, from: Hop, sub: Subscription) -> Vec<BrokerOutput> {
        let id = sub.id;
        if let Some(entry) = self.prt.get_mut(id) {
            if entry.sub.filter != sub.filter {
                debug_assert!(
                    false,
                    "subscription {id} re-issued with a different filter (kept {}, ignored {})",
                    entry.sub.filter, sub.filter
                );
                eprintln!(
                    "transmob-broker: ignoring re-subscription of {id} with a different filter; the original row is kept"
                );
            }
            if entry.lasthop != from {
                if Self::anchored_here(&self.clients, entry.lasthop) {
                    // The subscriber is attached HERE: the entry is
                    // authoritative and only a movement commit may
                    // re-point it. Adopting an overlay direction would
                    // let a later retraction on that link (e.g. an
                    // overlay-repair purge racing this re-propagation)
                    // annihilate the client's own subscription.
                    self.stats.reroutes += 1;
                } else if let (true, Hop::Broker(nb)) = (self.config.multipath, from) {
                    // Cyclic overlay: the subscription reached this
                    // broker over a second path. Keep the
                    // first-arrival parent as the primary route and
                    // record the new direction as a redundant one;
                    // publications fan out along both.
                    entry.alt_lasthops.insert(nb);
                    self.prt_alt_routes = true;
                } else {
                    // A re-route while the old and new subscription
                    // trees overlap (make-before-break, overlay
                    // repair): adopt the newest direction.
                    entry.lasthop = from;
                    self.stats.reroutes += 1;
                }
            }
        } else {
            self.prt.insert(sub, from);
        }
        self.propagate_sub(id)
    }

    /// Forwards subscription `id` toward every intersecting
    /// advertisement it has not reached yet, honouring covering.
    fn propagate_sub(&mut self, id: SubId) -> Vec<BrokerOutput> {
        let mut out = Vec::new();
        let Some(entry) = self.prt.get(id) else {
            return out;
        };
        let own_hop = entry.lasthop;
        let filter = entry.sub.filter.clone();
        // Collect the neighbours hosting (the direction of) intersecting
        // advertisements, in the active, any pending, and (under
        // multi-path forwarding) every redundant configuration.
        let mut targets: BTreeSet<BrokerId> = BTreeSet::new();
        for (aid, active, pending) in self.srt.overlapping_routes(&filter) {
            for hop in [Some(active), pending].into_iter().flatten() {
                if let Hop::Broker(n) = hop {
                    if Hop::Broker(n) != own_hop {
                        targets.insert(n);
                    }
                }
            }
            if self.config.multipath {
                if let Some(e) = self.srt.get(aid) {
                    for n in &e.alt_lasthops {
                        if Hop::Broker(*n) != own_hop {
                            targets.insert(*n);
                        }
                    }
                }
            }
        }
        for n in targets {
            out.extend(self.forward_sub_to(id, n));
        }
        out
    }

    /// Forwards subscription `id` to neighbour `n` unless it was
    /// already sent or is quenched by covering; in active covering
    /// mode, retracts subscriptions it covers on that link.
    fn forward_sub_to(&mut self, id: SubId, n: BrokerId) -> Vec<BrokerOutput> {
        let mut out = Vec::new();
        let Some(entry) = self.prt.get(id) else {
            return out;
        };
        if entry.lasthop == Hop::Broker(n)
            || entry.sent_to.contains(&n)
            || entry.alt_lasthops.contains(&n)
        {
            return out;
        }
        let filter = entry.sub.filter.clone();
        if self.config.sub_covering.enabled() && self.sub_quenched_on(n, id, &filter) {
            return out;
        }
        let sub = entry.sub.clone();
        // unwrap: entry existence checked above
        self.prt.get_mut(id).unwrap().sent_to.insert(n);
        out.push(BrokerOutput::ToBroker(n, PubSubMsg::Subscribe(sub)));
        if self.config.sub_covering == CoveringMode::Active {
            // Retract previously-forwarded subscriptions now covered on
            // this link. The containment index enumerates the covered
            // candidates; the hop conditions are checked per survivor.
            let retract: Vec<SubId> = self
                .prt
                .covered_by(&filter)
                .into_iter()
                .filter(|oid| {
                    // unwrap: ids come straight out of the table's index
                    let e = self.prt.get(*oid).unwrap();
                    *oid != id && e.sent_to.contains(&n) && !e.sub.filter.covers(&filter)
                })
                .collect();
            for oid in retract {
                // unwrap: ids were just drawn from the table
                self.prt.get_mut(oid).unwrap().sent_to.remove(&n);
                out.push(BrokerOutput::ToBroker(n, PubSubMsg::Unsubscribe(oid)));
            }
        }
        out
    }

    /// Whether subscription `id` with `filter` is quenched on link `n`
    /// by some covering subscription already forwarded there.
    fn sub_quenched_on(&self, n: BrokerId, id: SubId, filter: &Filter) -> bool {
        self.prt.covering(filter).into_iter().any(|oid| {
            // unwrap: ids come straight out of the table's index
            let e = self.prt.get(oid).unwrap();
            oid != id && e.sent_to.contains(&n) && e.lasthop != Hop::Broker(n)
        })
    }

    /// Whether `hop` is a client currently attached to this broker —
    /// the one case where a routing entry's lasthop is ground truth
    /// rather than learned overlay state.
    fn anchored_here(clients: &BTreeSet<ClientId>, hop: Hop) -> bool {
        matches!(hop, Hop::Client(c) if clients.contains(&c))
    }

    fn handle_unsubscribe(&mut self, from: Hop, id: SubId) -> Vec<BrokerOutput> {
        let Some(entry) = self.prt.get(id) else {
            // Stale retraction: the entry was already removed by a
            // crossing retraction (idempotent outcome).
            self.stats.reroutes += 1;
            return Vec::new();
        };
        if entry.lasthop != from {
            if let (true, Hop::Broker(nb)) = (self.config.multipath, from) {
                if entry.alt_lasthops.contains(&nb) {
                    // One of several redundant routes retracted; the
                    // entry stays, justified by the primary route.
                    // unwrap: presence checked above
                    self.prt.get_mut(id).unwrap().alt_lasthops.remove(&nb);
                    return Vec::new();
                }
            }
            // Unsubscriptions travel the reverse of the subscription
            // path; a mismatch means the entry was re-routed while the
            // retraction was in flight — ignore the stale retraction.
            self.stats.reroutes += 1;
            return Vec::new();
        }
        if self.config.multipath {
            if let Some(&next) = entry.alt_lasthops.iter().next() {
                // The primary route retracted but redundant routes
                // survive: promote the smallest one instead of
                // removing the entry. The other arms of the
                // retraction will strip the remaining routes; only
                // the last one removes the entry and cascades.
                // unwrap: presence checked above
                let e = self.prt.get_mut(id).unwrap();
                e.alt_lasthops.remove(&next);
                e.lasthop = Hop::Broker(next);
                return Vec::new();
            }
        }
        // unwrap: presence checked above
        let entry = self.prt.remove(id).unwrap();
        let mut out = Vec::new();
        for n in &entry.sent_to {
            out.push(BrokerOutput::ToBroker(*n, PubSubMsg::Unsubscribe(id)));
        }
        // Covering release: subscriptions quenched by the removed one
        // must now be forwarded.
        if self.config.sub_covering.enabled() {
            for n in &entry.sent_to {
                out.extend(self.release_quenched_subs(*n, Some(&entry.sub.filter)));
            }
        }
        out
    }

    /// Re-evaluates link `n` after `removed` was withdrawn from it: any
    /// subscription that needs the link (an intersecting advertisement
    /// lies that way) and has not been sent is forwarded now. This
    /// implements the covering-release cascade of the paper's
    /// pathological case.
    ///
    /// With `conservative_release` (the paper's behaviour) every
    /// candidate the withdrawn filter covered is re-forwarded, even if
    /// another covering subscription is still forwarded on the link —
    /// re-quenching is left to the downstream broker. The precise
    /// variant suppresses candidates still covered locally (the quench
    /// check inside `forward_sub_to`).
    fn release_quenched_subs(
        &mut self,
        n: BrokerId,
        removed: Option<&Filter>,
    ) -> Vec<BrokerOutput> {
        let mut out = Vec::new();
        let conservative = self.config.conservative_release && removed.is_some();
        // The containment index enumerates what the withdrawn filter
        // covered; without one, every row is a candidate.
        let covered: Vec<SubId> = match removed {
            Some(r) => self.prt.covered_by(r),
            None => self.prt.iter().map(|(id, _)| *id).collect(),
        };
        let candidates: Vec<SubId> = covered
            .into_iter()
            .filter(|id| {
                // unwrap: ids come straight out of the table's index
                let e = self.prt.get(*id).unwrap();
                e.lasthop != Hop::Broker(n) && !e.sent_to.contains(&n)
            })
            .collect();
        for id in candidates {
            // unwrap: candidate ids drawn from the table and the only
            // mutation below is forwarding on the same id
            let filter = self.prt.get(id).unwrap().sub.filter.clone();
            let needed =
                self.srt
                    .overlapping_routes(&filter)
                    .iter()
                    .any(|(aid, active, pending)| {
                        *active == Hop::Broker(n)
                            || *pending == Some(Hop::Broker(n))
                            || (self.config.multipath
                                && self
                                    .srt
                                    .get(*aid)
                                    .is_some_and(|e| e.alt_lasthops.contains(&n)))
                    });
            if !needed {
                continue;
            }
            if conservative {
                out.extend(self.forward_sub_unchecked(id, n));
            } else {
                out.extend(self.forward_sub_to(id, n));
            }
        }
        out
    }

    /// Forwards subscription `id` to `n` bypassing the quench check
    /// (conservative covering release).
    fn forward_sub_unchecked(&mut self, id: SubId, n: BrokerId) -> Vec<BrokerOutput> {
        let Some(entry) = self.prt.get_mut(id) else {
            return Vec::new();
        };
        if entry.lasthop == Hop::Broker(n)
            || entry.alt_lasthops.contains(&n)
            || !entry.sent_to.insert(n)
        {
            return Vec::new();
        }
        let sub = entry.sub.clone();
        vec![BrokerOutput::ToBroker(n, PubSubMsg::Subscribe(sub))]
    }

    // ----- advertisements --------------------------------------------

    fn handle_advertise(&mut self, from: Hop, adv: Advertisement) -> Vec<BrokerOutput> {
        let id = adv.id;
        if let Some(entry) = self.srt.get_mut(id) {
            if entry.adv.filter != adv.filter {
                debug_assert!(
                    false,
                    "advertisement {id} re-issued with a different filter (kept {}, ignored {})",
                    entry.adv.filter, adv.filter
                );
                eprintln!(
                    "transmob-broker: ignoring re-advertisement of {id} with a different filter; the original row is kept"
                );
            }
            if entry.lasthop != from {
                if Self::anchored_here(&self.clients, entry.lasthop) {
                    // Locally-anchored advertisement: authoritative,
                    // see the matching guard in `handle_subscribe`.
                    self.stats.reroutes += 1;
                } else if let (true, Hop::Broker(nb)) = (self.config.multipath, from) {
                    // Second arm of the advertisement flood on a
                    // cyclic overlay: record the redundant direction
                    // (the per-advertisement routing "tree" becomes a
                    // DAG rooted at the advertiser); the pull below
                    // extends known subscriptions along it.
                    entry.alt_lasthops.insert(nb);
                } else {
                    entry.lasthop = from;
                    self.stats.reroutes += 1;
                }
            }
        } else {
            self.srt.insert(adv, from);
        }
        let mut out = self.propagate_adv(id);
        // Pull rule: forward known intersecting subscriptions toward
        // the new advertisement.
        if let Hop::Broker(nf) = from {
            out.extend(self.pull_subs_toward(id, nf));
        }
        out
    }

    /// Floods advertisement `id` to every neighbour it has not reached,
    /// honouring advertisement covering.
    fn propagate_adv(&mut self, id: AdvId) -> Vec<BrokerOutput> {
        let mut out = Vec::new();
        let Some(entry) = self.srt.get(id) else {
            return out;
        };
        let own_hop = entry.lasthop;
        let targets: Vec<BrokerId> = self
            .neighbors
            .iter()
            .copied()
            .filter(|n| {
                Hop::Broker(*n) != own_hop
                    && !entry.sent_to.contains(n)
                    && !entry.alt_lasthops.contains(n)
            })
            .collect();
        for n in targets {
            out.extend(self.forward_adv_to(id, n));
        }
        out
    }

    /// The flood copy of an advertisement: its residual TTL budget
    /// decremented by the hop about to be taken, or `None` when the
    /// budget is exhausted and the flood must stop here.
    fn flood_copy(adv: &Advertisement) -> Option<Advertisement> {
        let mut a = adv.clone();
        match &mut a.ttl {
            Some(0) => return None,
            Some(t) => *t -= 1,
            None => {}
        }
        Some(a)
    }

    fn forward_adv_to(&mut self, id: AdvId, n: BrokerId) -> Vec<BrokerOutput> {
        let mut out = Vec::new();
        let Some(entry) = self.srt.get(id) else {
            return out;
        };
        if entry.lasthop == Hop::Broker(n)
            || entry.sent_to.contains(&n)
            || entry.alt_lasthops.contains(&n)
        {
            return out;
        }
        let filter = entry.adv.filter.clone();
        if self.config.adv_covering.enabled() && self.adv_quenched_on(n, id, &filter) {
            return out;
        }
        let Some(adv) = Self::flood_copy(&entry.adv) else {
            return out;
        };
        // unwrap: entry existence checked above
        self.srt.get_mut(id).unwrap().sent_to.insert(n);
        out.push(BrokerOutput::ToBroker(n, PubSubMsg::Advertise(adv)));
        if self.config.adv_covering == CoveringMode::Active {
            let retract: Vec<AdvId> = self
                .srt
                .covered_by(&filter)
                .into_iter()
                .filter(|oid| {
                    // unwrap: ids come straight out of the table's index
                    let e = self.srt.get(*oid).unwrap();
                    *oid != id && e.sent_to.contains(&n) && !e.adv.filter.covers(&filter)
                })
                .collect();
            for oid in retract {
                // unwrap: ids were just drawn from the table
                self.srt.get_mut(oid).unwrap().sent_to.remove(&n);
                out.push(BrokerOutput::ToBroker(n, PubSubMsg::Unadvertise(oid)));
            }
        }
        out
    }

    fn adv_quenched_on(&self, n: BrokerId, id: AdvId, filter: &Filter) -> bool {
        self.srt.covering(filter).into_iter().any(|oid| {
            // unwrap: ids come straight out of the table's index
            let e = self.srt.get(oid).unwrap();
            oid != id && e.sent_to.contains(&n) && e.lasthop != Hop::Broker(n)
        })
    }

    fn handle_unadvertise(&mut self, from: Hop, id: AdvId) -> Vec<BrokerOutput> {
        let Some(entry) = self.srt.get(id) else {
            self.stats.reroutes += 1;
            return Vec::new();
        };
        if entry.lasthop != from {
            if let (true, Hop::Broker(nb)) = (self.config.multipath, from) {
                if entry.alt_lasthops.contains(&nb) {
                    // A redundant route retracted; the entry stays,
                    // but subscriptions forwarded toward the vanished
                    // direction may have lost their justification.
                    // unwrap: presence checked above
                    self.srt.get_mut(id).unwrap().alt_lasthops.remove(&nb);
                    return self.prune_subs_on_link(nb);
                }
            }
            self.stats.reroutes += 1;
            return Vec::new();
        }
        if self.config.multipath {
            if let Some(&next) = entry.alt_lasthops.iter().next() {
                // Primary route retracted, redundant routes survive:
                // promote the smallest one; the retraction's other
                // arms strip the rest. Subscriptions pulled toward
                // the old primary direction are re-examined.
                let old = entry.lasthop;
                // unwrap: presence checked above
                let e = self.srt.get_mut(id).unwrap();
                e.alt_lasthops.remove(&next);
                e.lasthop = Hop::Broker(next);
                if let Hop::Broker(old_n) = old {
                    return self.prune_subs_on_link(old_n);
                }
                return Vec::new();
            }
        }
        // unwrap: presence checked above
        let entry = self.srt.remove(id).unwrap();
        let mut out = Vec::new();
        for n in &entry.sent_to {
            out.push(BrokerOutput::ToBroker(*n, PubSubMsg::Unadvertise(id)));
        }
        // Prune rule: subscriptions forwarded toward the removed
        // advertisement are retracted from that link when no other
        // intersecting advertisement remains there.
        if let Hop::Broker(nl) = entry.lasthop {
            out.extend(self.prune_subs_on_link(nl));
        }
        // Covering release for advertisements: previously-quenched
        // advertisements must now flood.
        if self.config.adv_covering.enabled() {
            let release_links: Vec<BrokerId> = entry.sent_to.iter().copied().collect();
            for n in release_links {
                out.extend(self.release_quenched_advs(n, Some(&entry.adv.filter)));
            }
        }
        out
    }

    /// Retracts subscriptions from link `n` when no intersecting
    /// advertisement (active or pending) remains in that direction.
    fn prune_subs_on_link(&mut self, n: BrokerId) -> Vec<BrokerOutput> {
        let mut out = Vec::new();
        let candidates: Vec<SubId> = self
            .prt
            .iter()
            .filter(|(_, e)| e.sent_to.contains(&n))
            .map(|(id, _)| *id)
            .collect();
        for id in candidates {
            out.extend(self.prune_sub_link(id, n));
        }
        out
    }

    /// Retracts subscription `id` from link `n` if no intersecting
    /// advertisement (active or pending) lies that way. Used by the
    /// prune rule and by movement-transaction rollback.
    pub fn prune_sub_link(&mut self, id: SubId, n: BrokerId) -> Vec<BrokerOutput> {
        let Some(entry) = self.prt.get(id) else {
            return Vec::new();
        };
        if !entry.sent_to.contains(&n) {
            return Vec::new();
        }
        let filter = entry.sub.filter.clone();
        let still_needed =
            self.srt
                .overlapping_routes(&filter)
                .iter()
                .any(|(aid, active, pending)| {
                    *active == Hop::Broker(n)
                        || *pending == Some(Hop::Broker(n))
                        || (self.config.multipath
                            && self
                                .srt
                                .get(*aid)
                                .is_some_and(|e| e.alt_lasthops.contains(&n)))
                });
        if still_needed {
            return Vec::new();
        }
        // unwrap: presence checked above
        self.prt.get_mut(id).unwrap().sent_to.remove(&n);
        vec![BrokerOutput::ToBroker(n, PubSubMsg::Unsubscribe(id))]
    }

    fn release_quenched_advs(
        &mut self,
        n: BrokerId,
        removed: Option<&Filter>,
    ) -> Vec<BrokerOutput> {
        let mut out = Vec::new();
        let conservative = self.config.conservative_release && removed.is_some();
        let covered: Vec<AdvId> = match removed {
            Some(r) => self.srt.covered_by(r),
            None => self.srt.iter().map(|(id, _)| *id).collect(),
        };
        let candidates: Vec<AdvId> = covered
            .into_iter()
            .filter(|id| {
                // unwrap: ids come straight out of the table's index
                let e = self.srt.get(*id).unwrap();
                e.lasthop != Hop::Broker(n) && !e.sent_to.contains(&n)
            })
            .collect();
        for id in candidates {
            if conservative {
                out.extend(self.forward_adv_unchecked(id, n));
            } else {
                out.extend(self.forward_adv_to(id, n));
            }
        }
        out
    }

    /// Floods advertisement `id` to `n` bypassing the quench check
    /// (conservative covering release).
    fn forward_adv_unchecked(&mut self, id: AdvId, n: BrokerId) -> Vec<BrokerOutput> {
        let Some(entry) = self.srt.get_mut(id) else {
            return Vec::new();
        };
        if entry.lasthop == Hop::Broker(n) || entry.alt_lasthops.contains(&n) {
            return Vec::new();
        }
        let Some(adv) = Self::flood_copy(&entry.adv) else {
            return Vec::new();
        };
        if !entry.sent_to.insert(n) {
            return Vec::new();
        }
        vec![BrokerOutput::ToBroker(n, PubSubMsg::Advertise(adv))]
    }

    /// Pull rule: forwards every intersecting subscription toward
    /// neighbour `nf`, where advertisement `id` arrived from. Also used
    /// by the reconfiguration protocol (paper Sec. 4.4, PRT cases 1
    /// and 3) against a pending advertisement configuration.
    pub fn pull_subs_toward(&mut self, id: AdvId, nf: BrokerId) -> Vec<BrokerOutput> {
        let Some(entry) = self.srt.get(id) else {
            return Vec::new();
        };
        let filter = entry.adv.filter.clone();
        let mut out = Vec::new();
        let candidates: Vec<SubId> = self
            .prt
            .overlapping(&filter)
            .into_iter()
            .filter(|sid| {
                // unwrap: ids come straight out of the table's index
                let e = self.prt.get(*sid).unwrap();
                e.lasthop != Hop::Broker(nf) && !e.sent_to.contains(&nf)
            })
            .collect();
        for sid in candidates {
            out.extend(self.forward_sub_to(sid, nf));
        }
        out
    }

    // ----- overlay repair --------------------------------------------

    fn handle_repair_adv(&mut self, from: Hop, adv: Advertisement) -> Vec<BrokerOutput> {
        if let Some(entry) = self.srt.get(adv.id) {
            if !entry.alt_lasthops.is_empty() {
                // The entry already holds multiple routes, so "adopt
                // the new unique route" — the tree-repair semantics
                // below — has no well-defined target and would
                // silently pick one. Publications already fan out
                // along every surviving route under the multi-path
                // forwarder, so the re-propagation is a no-op here.
                debug_assert!(
                    self.config.multipath,
                    "advertisement {} holds multiple routes but multi-path \
                     forwarding is disabled; repair re-propagation would \
                     silently pick one of them",
                    adv.id
                );
                return Vec::new();
            }
        }
        // Same idempotent insert-or-adopt semantics as a plain
        // advertisement — the lasthop adoption in `handle_advertise`
        // is exactly what makes a repair flood converge regardless of
        // whether it arrives before or after this broker ran its own
        // purge. The onward flood and the pulled subscriptions keep
        // the repair tag so repair traffic stays identifiable across
        // the overlay.
        Self::tag_repair(self.handle_advertise(from, adv))
    }

    fn handle_repair_sub(&mut self, from: Hop, sub: Subscription) -> Vec<BrokerOutput> {
        if let Some(entry) = self.prt.get(sub.id) {
            if !entry.alt_lasthops.is_empty() {
                // See `handle_repair_adv`: with multiple routes on
                // the entry there is no unique route to re-point, and
                // the multi-path forwarder already covers delivery.
                debug_assert!(
                    self.config.multipath,
                    "subscription {} holds multiple routes but multi-path \
                     forwarding is disabled; repair re-propagation would \
                     silently pick one of them",
                    sub.id
                );
                return Vec::new();
            }
        }
        Self::tag_repair(self.handle_subscribe(from, sub))
    }

    /// Rewrites forward-direction propagation (advertise / subscribe)
    /// triggered by a repair message as repair variants; retractions
    /// pass through untouched.
    fn tag_repair(outputs: Vec<BrokerOutput>) -> Vec<BrokerOutput> {
        outputs
            .into_iter()
            .map(|o| match o {
                BrokerOutput::ToBroker(n, PubSubMsg::Advertise(a)) => {
                    BrokerOutput::ToBroker(n, PubSubMsg::RepairAdv(a))
                }
                BrokerOutput::ToBroker(n, PubSubMsg::Subscribe(s)) => {
                    BrokerOutput::ToBroker(n, PubSubMsg::RepairSub(s))
                }
                other => other,
            })
            .collect()
    }

    /// Applies an overlay repair at this broker after `dead` was
    /// declared dead: mutates the neighbour set (`new_peers` are the
    /// repair edges incident to this broker), purges every routing
    /// entry learned through the dead link *as a retraction cascade*
    /// (so prune and covering release propagate the cleanup through
    /// the whole surviving subtree), and pushes the surviving
    /// advertisements over each new edge as [`PubSubMsg::RepairAdv`].
    /// The receiving side pulls its matching subscriptions back as
    /// [`PubSubMsg::RepairSub`], so both directions converge once both
    /// endpoints of a new edge have run their repair — no handshake
    /// round-trip is needed.
    ///
    /// In covering modes the push deliberately skips the quench check:
    /// over-propagating across a repair edge is always safe (the
    /// downstream broker re-quenches), whereas quenching against
    /// not-yet-repaired state could suppress a needed route.
    ///
    /// Returns the effects plus the ids of movement transactions whose
    /// pending (shadow) configuration references the dead broker —
    /// those can no longer commit toward it and must be aborted by the
    /// movement layer.
    pub fn repair_neighbors(
        &mut self,
        dead: BrokerId,
        new_peers: &[BrokerId],
    ) -> (Vec<BrokerOutput>, Vec<MoveId>) {
        self.neighbors.remove(&dead);
        for p in new_peers {
            if *p != self.id {
                self.neighbors.insert(*p);
            }
        }
        // Movements whose shadow configuration routes via the dead
        // broker: collected before the purge, which may remove the
        // very entries holding them.
        let mut doomed: BTreeSet<MoveId> = BTreeSet::new();
        for (_, e) in self.srt.iter() {
            if let Some(p) = &e.pending {
                if p.lasthop == Hop::Broker(dead) {
                    doomed.insert(p.move_id);
                }
            }
        }
        for (_, e) in self.prt.iter() {
            if let Some(p) = &e.pending {
                if p.lasthop == Hop::Broker(dead) {
                    doomed.insert(p.move_id);
                }
            }
        }
        // Redundant multi-path routes through the dead broker are
        // gone; strip them first so the purge below promotes only
        // *surviving* alternates when a primary route dies.
        let alt_advs: Vec<AdvId> = self
            .srt
            .iter()
            .filter(|(_, e)| e.alt_lasthops.contains(&dead))
            .map(|(id, _)| *id)
            .collect();
        for id in alt_advs {
            // unwrap: ids drawn from the table just above
            self.srt.get_mut(id).unwrap().alt_lasthops.remove(&dead);
        }
        let alt_subs: Vec<SubId> = self
            .prt
            .iter()
            .filter(|(_, e)| e.alt_lasthops.contains(&dead))
            .map(|(id, _)| *id)
            .collect();
        for id in alt_subs {
            // unwrap: ids drawn from the table just above
            self.prt.get_mut(id).unwrap().alt_lasthops.remove(&dead);
        }
        // Forwarding sets must stop referencing the dead link before
        // the purge cascades, so no retraction is addressed to it.
        let stale_advs: Vec<AdvId> = self
            .srt
            .iter()
            .filter(|(_, e)| e.sent_to.contains(&dead))
            .map(|(id, _)| *id)
            .collect();
        for id in stale_advs {
            // unwrap: ids drawn from the table just above
            self.srt.get_mut(id).unwrap().sent_to.remove(&dead);
        }
        let stale_subs: Vec<SubId> = self
            .prt
            .iter()
            .filter(|(_, e)| e.sent_to.contains(&dead))
            .map(|(id, _)| *id)
            .collect();
        for id in stale_subs {
            // unwrap: ids drawn from the table just above
            self.prt.get_mut(id).unwrap().sent_to.remove(&dead);
        }
        // Purge: withdraw every entry learned over the dead link
        // exactly as if the dead broker had retracted it. The
        // `lasthop == from` check in the retraction handlers holds by
        // construction, and the resulting cascade cleans the entry
        // from every surviving broker downstream.
        let mut out = Vec::new();
        let purge_advs: Vec<AdvId> = self
            .srt
            .iter()
            .filter(|(_, e)| e.lasthop == Hop::Broker(dead))
            .map(|(id, _)| *id)
            .collect();
        for id in purge_advs {
            out.extend(self.handle_unadvertise(Hop::Broker(dead), id));
        }
        let purge_subs: Vec<SubId> = self
            .prt
            .iter()
            .filter(|(_, e)| e.lasthop == Hop::Broker(dead))
            .map(|(id, _)| *id)
            .collect();
        for id in purge_subs {
            out.extend(self.handle_unsubscribe(Hop::Broker(dead), id));
        }
        // The purge may have dropped entries that carried pending
        // state; sweep the out-of-band bookkeeping so nothing leaks.
        let (srt, prt) = (&self.srt, &self.prt);
        self.pending_meta.retain(|k, _| match k {
            PendingKey::Sub(id, m) => prt
                .get(*id)
                .and_then(|e| e.pending.as_ref())
                .is_some_and(|p| p.move_id == *m),
            PendingKey::Adv(id, m) => srt
                .get(*id)
                .and_then(|e| e.pending.as_ref())
                .is_some_and(|p| p.move_id == *m),
        });
        // Re-propagate the surviving advertisements over each new
        // edge.
        for &p in new_peers {
            if p == self.id {
                continue;
            }
            let push: Vec<AdvId> = self
                .srt
                .iter()
                .filter(|(_, e)| e.lasthop != Hop::Broker(p) && !e.sent_to.contains(&p))
                .map(|(id, _)| *id)
                .collect();
            for id in push {
                // unwrap: ids drawn from the table just above
                let entry = self.srt.get_mut(id).unwrap();
                let Some(adv) = Self::flood_copy(&entry.adv) else {
                    continue;
                };
                entry.sent_to.insert(p);
                out.push(BrokerOutput::ToBroker(p, PubSubMsg::RepairAdv(adv)));
            }
        }
        (out, doomed.into_iter().collect())
    }

    // ----- publications ----------------------------------------------

    /// Turns one publication's matched routes into forwarding effects:
    /// deduplicated broker and client destinations, honouring the
    /// active and pending hops (plus, under multi-path forwarding,
    /// every redundant `alt_lasthops` route) and suppressing the
    /// arrival direction.
    fn emit_publish(
        &mut self,
        from: Hop,
        p: PublicationMsg,
        routes: Vec<(SubId, Hop, Option<Hop>)>,
    ) -> Vec<BrokerOutput> {
        let multipath = self.config.multipath;
        // On overlays where no redundant route was ever recorded
        // (every tree, even with `multipath` forced) the alt lookup
        // below can never add a destination — skip it wholesale.
        let fan_out_alts = multipath && self.prt_alt_routes;
        let mut broker_dests: BTreeSet<BrokerId> = BTreeSet::new();
        let mut client_dests: BTreeSet<ClientId> = BTreeSet::new();
        for (id, active, pending) in routes {
            for hop in [Some(active), pending].into_iter().flatten() {
                if hop == from {
                    continue;
                }
                match hop {
                    Hop::Broker(n) => {
                        broker_dests.insert(n);
                    }
                    Hop::Client(c) => {
                        client_dests.insert(c);
                    }
                }
            }
            if fan_out_alts {
                if let Some(e) = self.prt.get(id) {
                    for n in &e.alt_lasthops {
                        if Hop::Broker(*n) != from {
                            broker_dests.insert(*n);
                        }
                    }
                }
            }
        }
        if multipath && p.hops >= MAX_PUB_HOPS && !broker_dests.is_empty() {
            // Backstop bound: the dedup window should have terminated
            // any cycle long before this; count the drop so tests see
            // it.
            self.stats.anomalies += 1;
            broker_dests.clear();
        }
        let mut out = Vec::new();
        if !broker_dests.is_empty() {
            // The hop count only moves on cyclic overlays, keeping
            // acyclic forwarding byte-identical to previous releases.
            let mut fwd = p.clone();
            if multipath {
                fwd.hops += 1;
            }
            for n in broker_dests {
                out.push(BrokerOutput::ToBroker(n, PubSubMsg::Publish(fwd.clone())));
            }
        }
        for c in client_dests {
            out.push(BrokerOutput::Deliver(c, p.clone()));
        }
        out
    }

    // ----- movement-transaction support ------------------------------

    /// Installs the pending (shadow) configuration for a moving
    /// subscription at this broker: the paper's `rc(adv′)` copy,
    /// applied to a subscription. `new_lasthop` is the post-commit
    /// direction of the subscriber (`RouteS2T.suc(B)`, or the client at
    /// the target broker); `commit_sent_add` is the post-commit
    /// addition to the forwarding set (`RouteS2T.pre(B)` — the old
    /// subscriber direction, over which retractions must later travel).
    ///
    /// If the broker has no entry for the subscription (it was never
    /// propagated through here), a fresh entry is created and flagged
    /// so that [`BrokerCore::abort_move`] removes it entirely.
    pub fn install_pending_sub(
        &mut self,
        sub: &Subscription,
        move_id: MoveId,
        new_lasthop: Hop,
        commit_sent_add: Option<BrokerId>,
    ) {
        let created = self.prt.get(sub.id).is_none();
        if created {
            self.prt.insert(sub.clone(), new_lasthop);
        }
        // unwrap: entry exists (pre-existing or just inserted)
        let entry = self.prt.get_mut(sub.id).unwrap();
        entry.pending = Some(PendingRoute {
            move_id,
            lasthop: new_lasthop,
        });
        self.pending_meta.insert(
            PendingKey::Sub(sub.id, move_id),
            PendingMeta {
                commit_sent_add,
                created,
            },
        );
    }

    /// Installs the pending configuration for a moving advertisement;
    /// see [`BrokerCore::install_pending_sub`] for the parameters.
    pub fn install_pending_adv(
        &mut self,
        adv: &Advertisement,
        move_id: MoveId,
        new_lasthop: Hop,
        commit_sent_add: Option<BrokerId>,
    ) {
        let created = self.srt.get(adv.id).is_none();
        if created {
            self.srt.insert(adv.clone(), new_lasthop);
        }
        // unwrap: entry exists (pre-existing or just inserted)
        let entry = self.srt.get_mut(adv.id).unwrap();
        entry.pending = Some(PendingRoute {
            move_id,
            lasthop: new_lasthop,
        });
        self.pending_meta.insert(
            PendingKey::Adv(adv.id, move_id),
            PendingMeta {
                commit_sent_add,
                created,
            },
        );
    }

    /// Commits every pending configuration installed under `move_id`:
    /// the old routing configuration is replaced by the shadow one, the
    /// forwarding sets are re-oriented, and (for advertisement moves)
    /// subscriptions whose justification disappeared are pruned (the
    /// paper's PRT case 2).
    pub fn commit_move(&mut self, move_id: MoveId) -> Vec<BrokerOutput> {
        let mut out = Vec::new();
        let mut prune_links: BTreeSet<BrokerId> = BTreeSet::new();
        for id in self.srt.pending_for(move_id) {
            // unwrap: id came from pending_for on the same table
            let entry = self.srt.get_mut(id).unwrap();
            // unwrap: pending_for guarantees a pending config
            let pending = entry.pending.take().unwrap();
            let old_lasthop = entry.lasthop;
            entry.lasthop = pending.lasthop;
            if let Hop::Broker(nb) = pending.lasthop {
                entry.sent_to.remove(&nb);
                // The committed primary can no longer also be a
                // redundant route.
                entry.alt_lasthops.remove(&nb);
            }
            let meta = self
                .pending_meta
                .remove(&PendingKey::Adv(id, move_id))
                .unwrap_or(PendingMeta {
                    commit_sent_add: None,
                    created: false,
                });
            if let Some(add) = meta.commit_sent_add {
                // An overlay repair may have removed the old
                // direction; never resurrect a link to a dead broker.
                if self.neighbors.contains(&add) {
                    entry.sent_to.insert(add);
                }
            }
            if !meta.created {
                if let Hop::Broker(old_n) = old_lasthop {
                    prune_links.insert(old_n);
                }
            }
        }
        for id in self.prt.pending_for(move_id) {
            // unwrap: id came from pending_for on the same table
            let entry = self.prt.get_mut(id).unwrap();
            // unwrap: pending_for guarantees a pending config
            let pending = entry.pending.take().unwrap();
            entry.lasthop = pending.lasthop;
            if let Hop::Broker(nb) = pending.lasthop {
                entry.sent_to.remove(&nb);
                // The committed primary can no longer also be a
                // redundant route.
                entry.alt_lasthops.remove(&nb);
            }
            let meta = self
                .pending_meta
                .remove(&PendingKey::Sub(id, move_id))
                .unwrap_or(PendingMeta {
                    commit_sent_add: None,
                    created: false,
                });
            if let Some(add) = meta.commit_sent_add {
                if self.neighbors.contains(&add) {
                    entry.sent_to.insert(add);
                }
            }
        }
        // Prune subscriptions that pointed at the old advertisement
        // location (paper PRT case 2, realized as the generic prune).
        for n in prune_links {
            out.extend(self.prune_subs_on_link(n));
        }
        out
    }

    /// Rolls back every pending configuration installed under
    /// `move_id`: shadow configurations are dropped and entries created
    /// by the transaction are removed.
    pub fn abort_move(&mut self, move_id: MoveId) -> Vec<BrokerOutput> {
        for id in self.srt.pending_for(move_id) {
            let meta = self.pending_meta.remove(&PendingKey::Adv(id, move_id));
            if meta.is_some_and(|m| m.created) {
                self.srt.remove(id);
            } else if let Some(entry) = self.srt.get_mut(id) {
                entry.pending = None;
            }
        }
        for id in self.prt.pending_for(move_id) {
            let meta = self.pending_meta.remove(&PendingKey::Sub(id, move_id));
            if meta.is_some_and(|m| m.created) {
                self.prt.remove(id);
            } else if let Some(entry) = self.prt.get_mut(id) {
                entry.pending = None;
            }
        }
        Vec::new()
    }
}
