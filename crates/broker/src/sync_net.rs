//! A zero-latency, deterministic in-memory broker network.
//!
//! [`SyncNet`] hosts one [`BrokerCore`] per topology node and processes
//! messages from a single global FIFO queue (which preserves per-link
//! FIFO order). There is no clock and no concurrency: every call to
//! [`SyncNet::run`] drains the network to quiescence.
//!
//! This driver is used by unit/integration tests and by the routing
//! property checkers, where *what* the protocol converges to matters
//! but timing does not. The timing-faithful driver is `transmob-sim`.

use std::collections::{BTreeMap, VecDeque};

use transmob_pubsub::{BrokerId, ClientId, PublicationMsg};

use crate::broker::{BrokerConfig, BrokerCore};
use crate::messages::{BrokerOutput, Hop, MsgKind, PubSubMsg};
use crate::overlay::OverlayBuilder;
use crate::topology::Topology;

/// A recorded delivery of a publication to a client.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// Broker that performed the delivery.
    pub broker: BrokerId,
    /// Receiving client.
    pub client: ClientId,
    /// The publication.
    pub publication: PublicationMsg,
}

/// A deterministic, instantaneous broker network for tests and
/// property checking.
///
/// # Examples
///
/// ```
/// use transmob_broker::{BrokerConfig, SyncNet, Topology};
/// use transmob_pubsub::{Advertisement, AdvId, ClientId, Filter, Publication,
///     PublicationMsg, PubId, SubId, Subscription};
/// use transmob_broker::PubSubMsg;
/// use transmob_pubsub::BrokerId;
///
/// let mut net = SyncNet::builder()
///     .overlay(Topology::chain(3))
///     .options(BrokerConfig::plain())
///     .start();
/// let publisher = ClientId(1);
/// let subscriber = ClientId(2);
/// let f = Filter::builder().ge("x", 0).build();
/// net.client_send(BrokerId(1), publisher,
///     PubSubMsg::Advertise(Advertisement::new(AdvId::new(publisher, 0), f.clone())));
/// net.client_send(BrokerId(3), subscriber,
///     PubSubMsg::Subscribe(Subscription::new(SubId::new(subscriber, 0), f)));
/// net.client_send(BrokerId(1), publisher,
///     PubSubMsg::Publish(PublicationMsg::new(PubId(1), publisher,
///         Publication::new().with("x", 5))));
/// let deliveries = net.take_deliveries();
/// assert_eq!(deliveries.len(), 1);
/// assert_eq!(deliveries[0].client, subscriber);
/// ```
#[derive(Debug)]
pub struct SyncNet {
    topology: Topology,
    brokers: BTreeMap<BrokerId, BrokerCore>,
    queue: VecDeque<(BrokerId, Hop, PubSubMsg)>,
    deliveries: Vec<Delivery>,
    traffic: BTreeMap<MsgKind, u64>,
}

impl SyncNet {
    /// The builder entry point: `SyncNet::builder().overlay(..)
    /// .options(..).start()`.
    pub fn builder() -> SyncNetBuilder {
        SyncNetBuilder::default()
    }

    /// Builds a network over `topology` with every broker using
    /// `config`.
    #[deprecated(
        since = "0.2.0",
        note = "use SyncNet::builder().overlay(..).options(..).start()"
    )]
    pub fn new(topology: Topology, config: BrokerConfig) -> Self {
        Self::from_parts(topology, config)
    }

    /// A cyclic topology forces [`BrokerConfig::multipath`] on —
    /// cyclic routing is undefined without it.
    fn from_parts(topology: Topology, mut config: BrokerConfig) -> Self {
        config.multipath |= !topology.is_tree();
        let brokers = topology
            .brokers()
            .map(|b| {
                (
                    b,
                    BrokerCore::new(b, topology.neighbors(b).iter().copied(), config),
                )
            })
            .collect();
        SyncNet {
            topology,
            brokers,
            queue: VecDeque::new(),
            deliveries: Vec::new(),
            traffic: BTreeMap::new(),
        }
    }

    /// The overlay topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Immutable access to a broker.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the topology.
    pub fn broker(&self, id: BrokerId) -> &BrokerCore {
        &self.brokers[&id]
    }

    /// Mutable access to a broker (for the movement protocols and for
    /// test setup).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the topology.
    pub fn broker_mut(&mut self, id: BrokerId) -> &mut BrokerCore {
        self.brokers.get_mut(&id).expect("unknown broker id")
    }

    /// Injects a client message at `broker` and runs the network to
    /// quiescence.
    pub fn client_send(&mut self, broker: BrokerId, client: ClientId, msg: PubSubMsg) {
        self.queue.push_back((broker, Hop::Client(client), msg));
        self.run();
    }

    /// Enqueues a client message without running (for batching).
    pub fn enqueue_client(&mut self, broker: BrokerId, client: ClientId, msg: PubSubMsg) {
        self.queue.push_back((broker, Hop::Client(client), msg));
    }

    /// Applies `f` to one broker and routes the outputs it returns,
    /// then runs to quiescence. Used by movement protocols that
    /// manipulate broker state directly.
    pub fn with_broker<R>(
        &mut self,
        id: BrokerId,
        f: impl FnOnce(&mut BrokerCore) -> (R, Vec<BrokerOutput>),
    ) -> R {
        let broker = self.brokers.get_mut(&id).expect("unknown broker id");
        let (r, outputs) = f(broker);
        self.route_outputs(id, outputs);
        self.run();
        r
    }

    /// Drains the message queue, routing every output until the
    /// network is quiescent.
    ///
    /// Consecutive queue entries sharing a destination and arrival
    /// direction are ingested through one [`BrokerCore::handle_batch`]
    /// call. The batch call is defined as the sequential fold of the
    /// per-message handling, and its effects are appended in the same
    /// order the fold would emit them, so the global processing order
    /// (and thus convergence and traffic) is unchanged.
    pub fn run(&mut self) {
        while let Some((dst, from, msg)) = self.queue.pop_front() {
            *self.traffic.entry(msg.kind()).or_insert(0) += 1;
            let mut msgs = vec![msg];
            while let Some((d2, f2, _)) = self.queue.front() {
                if *d2 != dst || *f2 != from {
                    break;
                }
                // unwrap: front() just matched
                let (_, _, m) = self.queue.pop_front().unwrap();
                *self.traffic.entry(m.kind()).or_insert(0) += 1;
                msgs.push(m);
            }
            let broker = self.brokers.get_mut(&dst).expect("unknown broker id");
            let outputs = broker.handle_batch(from, msgs);
            self.route_outputs(dst, outputs.into_flat());
        }
    }

    fn route_outputs(&mut self, src: BrokerId, outputs: Vec<BrokerOutput>) {
        for o in outputs {
            match o {
                BrokerOutput::ToBroker(n, msg) => {
                    self.queue.push_back((n, Hop::Broker(src), msg));
                }
                BrokerOutput::Deliver(client, publication) => {
                    self.deliveries.push(Delivery {
                        broker: src,
                        client,
                        publication,
                    });
                }
            }
        }
    }

    /// Removes and returns all recorded deliveries.
    pub fn take_deliveries(&mut self) -> Vec<Delivery> {
        std::mem::take(&mut self.deliveries)
    }

    /// The recorded deliveries (without clearing).
    pub fn deliveries(&self) -> &[Delivery] {
        &self.deliveries
    }

    /// Total messages transmitted over overlay links, by kind. Client
    /// injections are counted too (as the paper's client↔broker
    /// messages).
    pub fn traffic(&self) -> &BTreeMap<MsgKind, u64> {
        &self.traffic
    }

    /// Total messages transmitted, all kinds.
    pub fn total_traffic(&self) -> u64 {
        self.traffic.values().sum()
    }

    /// Resets traffic counters (e.g. after setup, before the measured
    /// phase).
    pub fn reset_traffic(&mut self) {
        self.traffic.clear();
    }

    /// Iterates the brokers.
    pub fn brokers(&self) -> impl Iterator<Item = (&BrokerId, &BrokerCore)> {
        self.brokers.iter()
    }
}

/// Builder for [`SyncNet`] — the same `builder().overlay(..)
/// .options(..).start()` surface every driver exposes.
#[derive(Debug, Default)]
pub struct SyncNetBuilder {
    overlay: OverlayBuilder,
    config: BrokerConfig,
}

impl SyncNetBuilder {
    /// The overlay: an [`OverlayBuilder`] or a pre-built [`Topology`].
    pub fn overlay(mut self, overlay: impl Into<OverlayBuilder>) -> Self {
        self.overlay = overlay.into();
        self
    }

    /// The per-broker routing configuration (defaults to
    /// [`BrokerConfig::plain`]).
    pub fn options(mut self, config: impl Into<BrokerConfig>) -> Self {
        self.config = config.into();
        self
    }

    /// Builds the network.
    ///
    /// # Panics
    ///
    /// Panics if the overlay is invalid (empty, disconnected,
    /// duplicate edges) — use [`OverlayBuilder::build`] directly for
    /// the typed [`crate::TopologyError`].
    pub fn start(self) -> SyncNet {
        let (topology, par) = self
            .overlay
            .into_parts()
            .expect("invalid overlay passed to SyncNet::builder()");
        let mut config = self.config;
        if let Some(par) = par {
            config.parallelism = par;
        }
        SyncNet::from_parts(topology, config)
    }
}
