//! Broker overlay topology: a validated connected graph.
//!
//! The paper (Sec. 4.1) assumes an acyclic overlay of brokers, which
//! makes the route between any two brokers unique. [`Topology`] has
//! since been generalized to any *connected* graph — the tree is the
//! special case ([`Topology::is_tree`]) in which every route is
//! unique. On a cyclic overlay [`Topology::route`] returns a
//! deterministic shortest path (`RouteS2T` in the paper's notation);
//! the broker layer switches to multi-path forwarding with
//! publication dedup when the overlay has cycles (DESIGN.md §15).
//!
//! Construct with [`Topology::from_edges`] (or the [`Topology::chain`]
//! / [`Topology::star`] / [`Topology::ring`] presets); the positional
//! tree-only [`Topology::new`] survives as a deprecated wrapper.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use serde::{Deserialize, Serialize};
use transmob_pubsub::BrokerId;

/// Error building or mutating a [`Topology`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// An edge references a broker id that is not in the node set.
    UnknownBroker(BrokerId),
    /// The same undirected edge appears twice, or a self-loop.
    BadEdge(BrokerId, BrokerId),
    /// The overlay contains a cycle.
    Cyclic,
    /// The overlay is not connected.
    Disconnected,
    /// No brokers.
    Empty,
    /// A joining broker id is already in the overlay.
    AlreadyPresent(BrokerId),
    /// Removing this broker would leave the overlay empty.
    LastBroker(BrokerId),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownBroker(b) => write!(f, "edge references unknown broker {b}"),
            TopologyError::BadEdge(a, b) => write!(f, "bad edge ({a}, {b})"),
            TopologyError::Cyclic => f.write_str("overlay contains a cycle"),
            TopologyError::Disconnected => f.write_str("overlay is not connected"),
            TopologyError::Empty => f.write_str("overlay has no brokers"),
            TopologyError::AlreadyPresent(b) => write!(f, "broker {b} is already in the overlay"),
            TopologyError::LastBroker(b) => {
                write!(f, "cannot remove {b}: it is the last broker")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// A connected broker overlay graph (a tree in the acyclic special
/// case).
///
/// # Examples
///
/// ```
/// use transmob_broker::Topology;
/// use transmob_pubsub::BrokerId;
///
/// // A chain B1 - B2 - B3.
/// let t = Topology::from_edges(
///     vec![BrokerId(1), BrokerId(2), BrokerId(3)],
///     vec![(BrokerId(1), BrokerId(2)), (BrokerId(2), BrokerId(3))],
/// )?;
/// assert!(t.is_tree());
/// let route = t.route(BrokerId(1), BrokerId(3)).unwrap();
/// assert_eq!(route.brokers(), &[BrokerId(1), BrokerId(2), BrokerId(3)]);
///
/// // Closing the cycle is allowed; routes become shortest paths.
/// let ring = Topology::from_edges(
///     vec![BrokerId(1), BrokerId(2), BrokerId(3)],
///     vec![
///         (BrokerId(1), BrokerId(2)),
///         (BrokerId(2), BrokerId(3)),
///         (BrokerId(3), BrokerId(1)),
///     ],
/// )?;
/// assert!(!ring.is_tree());
/// assert_eq!(ring.route(BrokerId(1), BrokerId(3)).unwrap().hops(), 1);
/// # Ok::<(), transmob_broker::TopologyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    brokers: BTreeSet<BrokerId>,
    adjacency: BTreeMap<BrokerId, BTreeSet<BrokerId>>,
}

impl Topology {
    /// Builds and validates a *tree* topology.
    ///
    /// # Errors
    ///
    /// Returns an error if the edge list references unknown brokers,
    /// contains self-loops or duplicates, or if the graph is not a
    /// connected tree ([`TopologyError::Cyclic`] when it has extra
    /// edges).
    #[deprecated(
        since = "0.2.0",
        note = "use Topology::from_edges, which accepts any connected graph \
                (check is_tree() if acyclicity is required)"
    )]
    pub fn new(
        brokers: impl IntoIterator<Item = BrokerId>,
        edges: impl IntoIterator<Item = (BrokerId, BrokerId)>,
    ) -> Result<Self, TopologyError> {
        let t = Self::from_edges(brokers, edges)?;
        if !t.is_tree() {
            return Err(TopologyError::Cyclic);
        }
        Ok(t)
    }

    /// Builds and validates a topology over any connected graph —
    /// cycles are allowed and enable multi-path forwarding at the
    /// broker layer.
    ///
    /// # Errors
    ///
    /// Returns an error if the edge list references unknown brokers,
    /// contains self-loops or duplicates, or if the graph is empty or
    /// not connected.
    pub fn from_edges(
        brokers: impl IntoIterator<Item = BrokerId>,
        edges: impl IntoIterator<Item = (BrokerId, BrokerId)>,
    ) -> Result<Self, TopologyError> {
        let brokers: BTreeSet<BrokerId> = brokers.into_iter().collect();
        if brokers.is_empty() {
            return Err(TopologyError::Empty);
        }
        let mut adjacency: BTreeMap<BrokerId, BTreeSet<BrokerId>> =
            brokers.iter().map(|b| (*b, BTreeSet::new())).collect();
        for (a, b) in edges {
            if a == b {
                return Err(TopologyError::BadEdge(a, b));
            }
            if !brokers.contains(&a) {
                return Err(TopologyError::UnknownBroker(a));
            }
            if !brokers.contains(&b) {
                return Err(TopologyError::UnknownBroker(b));
            }
            // unwrap: both ids were just checked to be in the map
            if !adjacency.get_mut(&a).unwrap().insert(b) {
                return Err(TopologyError::BadEdge(a, b));
            }
            adjacency.get_mut(&b).unwrap().insert(a);
        }
        let start = *brokers.iter().next().expect("non-empty");
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([start]);
        seen.insert(start);
        while let Some(b) = queue.pop_front() {
            for n in &adjacency[&b] {
                if seen.insert(*n) {
                    queue.push_back(*n);
                }
            }
        }
        if seen.len() != brokers.len() {
            return Err(TopologyError::Disconnected);
        }
        Ok(Topology { brokers, adjacency })
    }

    /// A linear chain `B1 - B2 - ... - Bn` (ids 1..=n).
    pub fn chain(n: u32) -> Self {
        let brokers: Vec<BrokerId> = (1..=n).map(BrokerId).collect();
        let edges: Vec<_> = (1..n).map(|i| (BrokerId(i), BrokerId(i + 1))).collect();
        Topology::from_edges(brokers, edges).expect("chain is a valid tree")
    }

    /// A star with `B1` at the centre and `B2..=Bn` as leaves.
    pub fn star(n: u32) -> Self {
        let brokers: Vec<BrokerId> = (1..=n).map(BrokerId).collect();
        let edges: Vec<_> = (2..=n).map(|i| (BrokerId(1), BrokerId(i))).collect();
        Topology::from_edges(brokers, edges).expect("star is a valid tree")
    }

    /// A ring `B1 - B2 - ... - Bn - B1` (ids 1..=n, `n >= 3`): the
    /// smallest cyclic overlay, giving every broker pair two disjoint
    /// paths.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` (two nodes cannot form a simple cycle).
    pub fn ring(n: u32) -> Self {
        assert!(n >= 3, "a ring needs at least 3 brokers");
        let brokers: Vec<BrokerId> = (1..=n).map(BrokerId).collect();
        let mut edges: Vec<_> = (1..n).map(|i| (BrokerId(i), BrokerId(i + 1))).collect();
        edges.push((BrokerId(n), BrokerId(1)));
        Topology::from_edges(brokers, edges).expect("ring is a valid connected graph")
    }

    /// Whether the overlay is acyclic (a connected graph is a tree
    /// exactly when it has `|V| - 1` edges). Tree overlays keep the
    /// paper's unique-route forwarding; cyclic overlays switch the
    /// broker layer to multi-path forwarding with publication dedup.
    pub fn is_tree(&self) -> bool {
        self.edge_count() + 1 == self.brokers.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.values().map(BTreeSet::len).sum::<usize>() / 2
    }

    /// Adds the undirected edge `a - b` (closing a cycle is allowed:
    /// this is how cyclic overlays are grown from trees).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownBroker`] if either endpoint is
    /// not in the overlay and [`TopologyError::BadEdge`] for
    /// self-loops or edges that already exist.
    pub fn add_edge(&mut self, a: BrokerId, b: BrokerId) -> Result<TopologyChange, TopologyError> {
        if a == b {
            return Err(TopologyError::BadEdge(a, b));
        }
        if !self.brokers.contains(&a) {
            return Err(TopologyError::UnknownBroker(a));
        }
        if !self.brokers.contains(&b) {
            return Err(TopologyError::UnknownBroker(b));
        }
        if !self.adjacency.get_mut(&a).unwrap().insert(b) {
            return Err(TopologyError::BadEdge(a, b));
        }
        self.adjacency.get_mut(&b).unwrap().insert(a);
        self.debug_check_invariants();
        Ok(TopologyChange {
            removed_edges: Vec::new(),
            added_edges: vec![ordered_edge(a, b)],
        })
    }

    /// The broker ids, in order.
    pub fn brokers(&self) -> impl Iterator<Item = BrokerId> + '_ {
        self.brokers.iter().copied()
    }

    /// Number of brokers.
    pub fn len(&self) -> usize {
        self.brokers.len()
    }

    /// Whether the overlay is empty (never true for a validated
    /// topology).
    pub fn is_empty(&self) -> bool {
        self.brokers.is_empty()
    }

    /// Whether `b` is in the overlay.
    pub fn contains(&self, b: BrokerId) -> bool {
        self.brokers.contains(&b)
    }

    /// The neighbours of `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is not in the overlay.
    pub fn neighbors(&self, b: BrokerId) -> &BTreeSet<BrokerId> {
        &self.adjacency[&b]
    }

    /// The edges, each reported once with the smaller id first.
    pub fn edges(&self) -> Vec<(BrokerId, BrokerId)> {
        let mut out = Vec::new();
        for (a, ns) in &self.adjacency {
            for n in ns {
                if a < n {
                    out.push((*a, *n));
                }
            }
        }
        out
    }

    /// The route from `src` to `dst` (`RouteS2T` in the paper): the
    /// unique path on a tree, a *deterministic shortest* path on a
    /// cyclic overlay (BFS over sorted neighbour sets, so every broker
    /// computes the same path, and hop-by-hop forwarding along
    /// [`Topology::next_hop`] converges because the remaining distance
    /// strictly decreases).
    ///
    /// Returns `None` if either endpoint is not in the overlay. The
    /// route includes both endpoints; `route(b, b)` is the single-node
    /// route.
    pub fn route(&self, src: BrokerId, dst: BrokerId) -> Option<Route> {
        if !self.contains(src) || !self.contains(dst) {
            return None;
        }
        if src == dst {
            return Some(Route { brokers: vec![src] });
        }
        // BFS from src recording parents; in a tree this finds the
        // unique path, in a graph the deterministic shortest one.
        let mut parent: BTreeMap<BrokerId, BrokerId> = BTreeMap::new();
        let mut queue = VecDeque::from([src]);
        let mut seen = BTreeSet::from([src]);
        'bfs: while let Some(b) = queue.pop_front() {
            for n in &self.adjacency[&b] {
                if seen.insert(*n) {
                    parent.insert(*n, b);
                    if *n == dst {
                        break 'bfs;
                    }
                    queue.push_back(*n);
                }
            }
        }
        let mut path = vec![dst];
        let mut cur = dst;
        while cur != src {
            cur = *parent.get(&cur)?;
            path.push(cur);
        }
        path.reverse();
        Some(Route { brokers: path })
    }

    /// Renders the overlay as Graphviz DOT (used by the `figures`
    /// harness to export the Fig. 6 drawing).
    pub fn to_dot(&self) -> String {
        let mut out = String::from("graph overlay {\n  node [shape=circle];\n");
        for (a, b) in self.edges() {
            out.push_str(&format!("  \"{a}\" -- \"{b}\";\n"));
        }
        out.push_str("}\n");
        out
    }

    /// The next hop from `from` on the [`Topology::route`] toward `to`
    /// (unique on trees, deterministic-shortest on cyclic overlays).
    ///
    /// Returns `None` when `from == to` or either is unknown.
    pub fn next_hop(&self, from: BrokerId, to: BrokerId) -> Option<BrokerId> {
        let route = self.route(from, to)?;
        route.brokers.get(1).copied()
    }

    /// Adds `broker` to the overlay, attached to `attach_to`.
    ///
    /// Attaching a fresh leaf to an existing node keeps the graph
    /// connected (and keeps a tree a tree), so this cannot violate the
    /// invariants. Extra edges for the new broker can then be added
    /// with [`Topology::add_edge`].
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::AlreadyPresent`] if `broker` is in the
    /// overlay and [`TopologyError::UnknownBroker`] if `attach_to` is
    /// not.
    pub fn join(
        &mut self,
        broker: BrokerId,
        attach_to: BrokerId,
    ) -> Result<TopologyChange, TopologyError> {
        if self.brokers.contains(&broker) {
            return Err(TopologyError::AlreadyPresent(broker));
        }
        if !self.brokers.contains(&attach_to) {
            return Err(TopologyError::UnknownBroker(attach_to));
        }
        self.brokers.insert(broker);
        self.adjacency.insert(broker, BTreeSet::from([attach_to]));
        // unwrap: attach_to membership checked above
        self.adjacency.get_mut(&attach_to).unwrap().insert(broker);
        self.debug_check_invariants();
        Ok(TopologyChange {
            removed_edges: Vec::new(),
            added_edges: vec![ordered_edge(broker, attach_to)],
        })
    }

    /// Removes `broker` gracefully, designating the neighbour that
    /// inherits its responsibilities (routing state, attached-client
    /// handover) and reconnecting any remaining components through it.
    ///
    /// The designated neighbour is the smallest-id neighbour of the
    /// leaving broker; on a tree every other neighbour gains an edge
    /// to it, on a general graph only the components actually
    /// disconnected by the removal do (often none — redundant paths
    /// keep the remainder connected). This is the same reconnection
    /// rule as [`Topology::repair`] — the difference between leave and
    /// repair is purely at the routing layer (state handover vs.
    /// re-propagation).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownBroker`] if `broker` is not in
    /// the overlay and [`TopologyError::LastBroker`] if it is the only
    /// one.
    pub fn leave(&mut self, broker: BrokerId) -> Result<(BrokerId, TopologyChange), TopologyError> {
        let change = self.remove_reconnect(broker)?;
        let designated = change
            .added_edges
            .first()
            .map(|(a, _)| *a)
            .or_else(|| {
                change
                    .removed_edges
                    .iter()
                    .flat_map(|&(a, b)| [a, b])
                    .find(|x| *x != broker)
            })
            .expect("a non-last broker has at least one neighbour");
        Ok((designated, change))
    }

    /// Repairs the overlay after `dead` crashed: removes it and, where
    /// the removal actually disconnected the remainder, reconnects the
    /// orphaned components with new edges, preserving connectivity
    /// (and acyclicity on trees — reconnection never *adds* cycles).
    ///
    /// The reconnection rule is deterministic: the smallest-id
    /// neighbour of the dead broker (the *anchor*) gains an edge into
    /// every component of the remainder that it is not itself part of,
    /// landing on that component's smallest-id ex-neighbour of the
    /// dead broker. On a tree every ex-neighbour is its own component,
    /// so this degenerates to the original rule (anchor gains an edge
    /// to every other neighbour); on a cyclic overlay whose redundant
    /// paths keep the remainder connected, no edges are added at all.
    /// Determinism matters — every surviving broker derives the same
    /// post-repair overlay from `(topology, dead)` alone, with no
    /// coordination round.
    ///
    /// Returns the edge set that changed.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownBroker`] if `dead` is not in
    /// the overlay and [`TopologyError::LastBroker`] if it is the only
    /// one.
    pub fn repair(&mut self, dead: BrokerId) -> Result<TopologyChange, TopologyError> {
        self.remove_reconnect(dead)
    }

    /// Shared removal + reconnection for [`Topology::leave`] and
    /// [`Topology::repair`].
    fn remove_reconnect(&mut self, gone: BrokerId) -> Result<TopologyChange, TopologyError> {
        if !self.brokers.contains(&gone) {
            return Err(TopologyError::UnknownBroker(gone));
        }
        if self.brokers.len() == 1 {
            return Err(TopologyError::LastBroker(gone));
        }
        // unwrap: membership checked above
        let neighbors: Vec<BrokerId> = self.adjacency.remove(&gone).unwrap().into_iter().collect();
        self.brokers.remove(&gone);
        let mut removed_edges = Vec::new();
        for n in &neighbors {
            self.adjacency.get_mut(n).unwrap().remove(&gone);
            removed_edges.push(ordered_edge(gone, *n));
        }
        // Label the connected components of the remainder. Every
        // component contains at least one ex-neighbour of `gone` (its
        // path to `gone` in the pre-removal graph entered through
        // one), so reconnecting through ex-neighbours suffices.
        let mut component: BTreeMap<BrokerId, usize> = BTreeMap::new();
        for &start in &self.brokers {
            if component.contains_key(&start) {
                continue;
            }
            let idx = component.len(); // distinct per BFS start
            component.insert(start, idx);
            let mut queue = VecDeque::from([start]);
            while let Some(b) = queue.pop_front() {
                for n in &self.adjacency[&b] {
                    if let std::collections::btree_map::Entry::Vacant(e) = component.entry(*n) {
                        e.insert(idx);
                        queue.push_back(*n);
                    }
                }
            }
        }
        // The neighbour set is sorted (BTreeSet), so the anchor is the
        // smallest-id neighbour: under the TCP runtime's owner-dials
        // rule (smaller id dials) the anchor owns every new link. Each
        // still-disconnected component is adopted through its own
        // smallest-id ex-neighbour; iterating `neighbors` in ascending
        // order makes that the first one seen per component.
        let mut added_edges = Vec::new();
        if let Some((&anchor, rest)) = neighbors.split_first() {
            let mut linked = BTreeSet::from([component[&anchor]]);
            for n in rest {
                if linked.insert(component[n]) {
                    self.adjacency.get_mut(&anchor).unwrap().insert(*n);
                    self.adjacency.get_mut(n).unwrap().insert(anchor);
                    added_edges.push(ordered_edge(anchor, *n));
                }
            }
        }
        self.debug_check_invariants();
        Ok(TopologyChange {
            removed_edges,
            added_edges,
        })
    }

    /// Debug-build re-validation of the graph invariants after a
    /// mutation (the mutation ops maintain them by construction).
    fn debug_check_invariants(&self) {
        #[cfg(debug_assertions)]
        {
            let rebuilt = Topology::from_edges(self.brokers.iter().copied(), self.edges());
            debug_assert!(
                rebuilt.as_ref() == Ok(self),
                "topology mutation broke the overlay invariants: {rebuilt:?}"
            );
        }
    }
}

/// Normalizes an undirected edge to (smaller, larger).
fn ordered_edge(a: BrokerId, b: BrokerId) -> (BrokerId, BrokerId) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// The edge delta produced by a [`Topology`] mutation, each edge
/// reported with the smaller id first.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopologyChange {
    /// Edges that disappeared.
    pub removed_edges: Vec<(BrokerId, BrokerId)>,
    /// Edges that were created.
    pub added_edges: Vec<(BrokerId, BrokerId)>,
}

/// The unique route between two brokers: the paper's
/// `RouteS2T = <B_i, ..., B_j>` with `pre`/`suc` accessors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    brokers: Vec<BrokerId>,
}

impl Route {
    /// The brokers on the route, source first.
    pub fn brokers(&self) -> &[BrokerId] {
        &self.brokers
    }

    /// The source broker.
    pub fn source(&self) -> BrokerId {
        self.brokers[0]
    }

    /// The target broker.
    pub fn target(&self) -> BrokerId {
        *self.brokers.last().expect("routes are non-empty")
    }

    /// Number of brokers on the route.
    pub fn len(&self) -> usize {
        self.brokers.len()
    }

    /// Whether the route is a single broker (source == target).
    pub fn is_empty(&self) -> bool {
        false // a Route always has at least one broker
    }

    /// Number of hops (edges) on the route.
    pub fn hops(&self) -> usize {
        self.brokers.len() - 1
    }

    /// `RouteS2T.pre(b)`: the predecessor of `b` (toward the source).
    pub fn pre(&self, b: BrokerId) -> Option<BrokerId> {
        let i = self.brokers.iter().position(|x| *x == b)?;
        if i == 0 {
            None
        } else {
            Some(self.brokers[i - 1])
        }
    }

    /// `RouteS2T.suc(b)`: the successor of `b` (toward the target).
    pub fn suc(&self, b: BrokerId) -> Option<BrokerId> {
        let i = self.brokers.iter().position(|x| *x == b)?;
        self.brokers.get(i + 1).copied()
    }

    /// Whether `b` lies on the route.
    pub fn contains(&self, b: BrokerId) -> bool {
        self.brokers.contains(&b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u32) -> BrokerId {
        BrokerId(i)
    }

    #[test]
    fn chain_routes() {
        let t = Topology::chain(5);
        let r = t.route(b(1), b(5)).unwrap();
        assert_eq!(r.brokers(), &[b(1), b(2), b(3), b(4), b(5)]);
        assert_eq!(r.hops(), 4);
        assert_eq!(r.pre(b(3)), Some(b(2)));
        assert_eq!(r.suc(b(3)), Some(b(4)));
        assert_eq!(r.pre(b(1)), None);
        assert_eq!(r.suc(b(5)), None);
    }

    #[test]
    fn route_to_self_is_single_node() {
        let t = Topology::chain(3);
        let r = t.route(b(2), b(2)).unwrap();
        assert_eq!(r.brokers(), &[b(2)]);
        assert_eq!(r.hops(), 0);
        assert_eq!(r.source(), r.target());
    }

    #[test]
    fn star_routes_pass_centre() {
        let t = Topology::star(6);
        let r = t.route(b(4), b(5)).unwrap();
        assert_eq!(r.brokers(), &[b(4), b(1), b(5)]);
    }

    /// The deprecated tree-only constructor still enforces
    /// acyclicity.
    #[test]
    #[allow(deprecated)]
    fn cycle_rejected_by_tree_constructor() {
        let err = Topology::new(
            vec![b(1), b(2), b(3)],
            vec![(b(1), b(2)), (b(2), b(3)), (b(3), b(1))],
        )
        .unwrap_err();
        assert_eq!(err, TopologyError::Cyclic);
    }

    #[test]
    fn cycle_accepted_by_graph_constructor() {
        let t = Topology::from_edges(
            vec![b(1), b(2), b(3)],
            vec![(b(1), b(2)), (b(2), b(3)), (b(3), b(1))],
        )
        .unwrap();
        assert!(!t.is_tree());
        assert_eq!(t.edge_count(), 3);
        // Shortest path wins; the neighbour order makes it
        // deterministic.
        assert_eq!(t.route(b(1), b(3)).unwrap().brokers(), &[b(1), b(3)]);
    }

    #[test]
    fn disconnected_rejected() {
        let err = Topology::from_edges(vec![b(1), b(2), b(3)], vec![(b(1), b(2))]).unwrap_err();
        assert_eq!(err, TopologyError::Disconnected);
    }

    #[test]
    fn self_loop_and_duplicate_edges_rejected() {
        assert_eq!(
            Topology::from_edges(vec![b(1), b(2)], vec![(b(1), b(1))]).unwrap_err(),
            TopologyError::BadEdge(b(1), b(1))
        );
        assert_eq!(
            Topology::from_edges(vec![b(1), b(2)], vec![(b(1), b(2)), (b(2), b(1))]).unwrap_err(),
            TopologyError::BadEdge(b(2), b(1))
        );
    }

    #[test]
    fn unknown_broker_rejected() {
        assert_eq!(
            Topology::from_edges(vec![b(1)], vec![(b(1), b(9))]).unwrap_err(),
            TopologyError::UnknownBroker(b(9))
        );
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(
            Topology::from_edges(Vec::<BrokerId>::new(), vec![]).unwrap_err(),
            TopologyError::Empty
        );
    }

    #[test]
    fn ring_preset_is_cyclic_and_routes_shortest() {
        let t = Topology::ring(5);
        assert!(!t.is_tree());
        assert_eq!(t.edge_count(), 5);
        // B1 -> B4: the short way round is B1 - B5 - B4.
        assert_eq!(t.route(b(1), b(4)).unwrap().hops(), 2);
        assert_eq!(t.neighbors(b(1)), &BTreeSet::from([b(2), b(5)]));
    }

    #[test]
    fn add_edge_closes_cycles_and_validates() {
        let mut t = Topology::chain(4);
        let change = t.add_edge(b(4), b(1)).unwrap();
        assert_eq!(change.added_edges, vec![(b(1), b(4))]);
        assert!(!t.is_tree());
        assert_eq!(t.route(b(1), b(4)).unwrap().hops(), 1);
        assert_eq!(
            t.add_edge(b(1), b(4)).unwrap_err(),
            TopologyError::BadEdge(b(1), b(4))
        );
        assert_eq!(
            t.add_edge(b(2), b(2)).unwrap_err(),
            TopologyError::BadEdge(b(2), b(2))
        );
        assert_eq!(
            t.add_edge(b(1), b(9)).unwrap_err(),
            TopologyError::UnknownBroker(b(9))
        );
    }

    #[test]
    fn repair_on_a_ring_adds_no_edges() {
        // Removing one ring node leaves a chain: still connected, so
        // the repair delta is pure removal.
        let mut t = Topology::ring(5);
        let change = t.repair(b(3)).unwrap();
        assert_eq!(change.removed_edges, vec![(b(2), b(3)), (b(3), b(4))]);
        assert!(change.added_edges.is_empty());
        assert!(t.is_tree(), "ring minus a node is a chain");
        assert_eq!(
            t.route(b(2), b(4)).unwrap().brokers(),
            &[b(2), b(1), b(5), b(4)]
        );
    }

    #[test]
    fn repair_reconnects_only_disconnected_components() {
        // Two triangles sharing node B4: killing B4 splits them, and
        // the anchor (B1) adopts the other component through its
        // smallest ex-neighbour (B5) — one edge, not one per
        // neighbour.
        let mut t = Topology::from_edges(
            vec![b(1), b(2), b(3), b(5), b(6), b(4)],
            vec![
                (b(1), b(2)),
                (b(2), b(3)),
                (b(3), b(1)),
                (b(5), b(6)),
                (b(1), b(4)),
                (b(3), b(4)),
                (b(5), b(4)),
                (b(6), b(4)),
            ],
        )
        .unwrap();
        let change = t.repair(b(4)).unwrap();
        assert_eq!(change.added_edges, vec![(b(1), b(5))]);
        assert_eq!(change.removed_edges.len(), 4);
        assert!(t.contains(b(5)));
        assert_eq!(
            t.route(b(2), b(6)).unwrap().brokers(),
            &[b(2), b(1), b(5), b(6)]
        );
    }

    #[test]
    fn next_hop_follows_route() {
        let t = Topology::star(4);
        assert_eq!(t.next_hop(b(2), b(3)), Some(b(1)));
        assert_eq!(t.next_hop(b(1), b(3)), Some(b(3)));
        assert_eq!(t.next_hop(b(3), b(3)), None);
    }

    #[test]
    fn route_symmetric_reverse() {
        let t = Topology::chain(7);
        let fwd = t.route(b(2), b(6)).unwrap();
        let back = t.route(b(6), b(2)).unwrap();
        let mut rev = fwd.brokers().to_vec();
        rev.reverse();
        assert_eq!(back.brokers(), rev.as_slice());
    }

    #[test]
    fn dot_export_lists_every_edge() {
        let t = Topology::star(4);
        let dot = t.to_dot();
        assert!(dot.starts_with("graph overlay"));
        for (a, b) in t.edges() {
            assert!(dot.contains(&format!("\"{a}\" -- \"{b}\"")));
        }
    }

    #[test]
    fn neighbors_reflect_edges() {
        let t = Topology::star(4);
        assert_eq!(t.neighbors(b(1)).len(), 3);
        assert_eq!(t.neighbors(b(2)).len(), 1);
        assert_eq!(t.edges().len(), 3);
    }

    #[test]
    fn join_attaches_leaf() {
        let mut t = Topology::chain(3);
        let change = t.join(b(9), b(2)).unwrap();
        assert_eq!(change.added_edges, vec![(b(2), b(9))]);
        assert!(change.removed_edges.is_empty());
        assert!(t.contains(b(9)));
        assert_eq!(t.route(b(9), b(1)).unwrap().brokers(), &[b(9), b(2), b(1)]);
    }

    #[test]
    fn join_rejects_duplicates_and_unknown_attach() {
        let mut t = Topology::chain(3);
        assert_eq!(
            t.join(b(2), b(1)).unwrap_err(),
            TopologyError::AlreadyPresent(b(2))
        );
        assert_eq!(
            t.join(b(9), b(8)).unwrap_err(),
            TopologyError::UnknownBroker(b(8))
        );
    }

    #[test]
    fn repair_of_star_centre_reconnects_through_anchor() {
        // Killing the centre of a star orphans every leaf; the anchor
        // (smallest-id neighbour) must adopt all the others.
        let mut t = Topology::star(5);
        let change = t.repair(b(1)).unwrap();
        assert_eq!(change.removed_edges.len(), 4);
        assert_eq!(
            change.added_edges,
            vec![(b(2), b(3)), (b(2), b(4)), (b(2), b(5))]
        );
        assert!(!t.contains(b(1)));
        assert_eq!(t.len(), 4);
        assert_eq!(t.route(b(5), b(3)).unwrap().brokers(), &[b(5), b(2), b(3)]);
    }

    #[test]
    fn repair_of_chain_interior_bridges_the_gap() {
        let mut t = Topology::chain(4);
        let change = t.repair(b(2)).unwrap();
        assert_eq!(change.removed_edges, vec![(b(1), b(2)), (b(2), b(3))]);
        assert_eq!(change.added_edges, vec![(b(1), b(3))]);
        assert_eq!(t.route(b(1), b(4)).unwrap().brokers(), &[b(1), b(3), b(4)]);
    }

    #[test]
    fn repair_of_leaf_adds_no_edges() {
        let mut t = Topology::chain(3);
        let change = t.repair(b(3)).unwrap();
        assert_eq!(change.removed_edges, vec![(b(2), b(3))]);
        assert!(change.added_edges.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn leave_designates_smallest_neighbor() {
        let mut t = Topology::star(4);
        let (designated, change) = t.leave(b(1)).unwrap();
        assert_eq!(designated, b(2));
        assert_eq!(change.added_edges, vec![(b(2), b(3)), (b(2), b(4))]);

        let mut t = Topology::chain(3);
        let (designated, change) = t.leave(b(3)).unwrap();
        assert_eq!(designated, b(2));
        assert!(change.added_edges.is_empty());
    }

    #[test]
    fn removing_unknown_or_last_broker_rejected() {
        let mut t = Topology::chain(2);
        assert_eq!(
            t.repair(b(9)).unwrap_err(),
            TopologyError::UnknownBroker(b(9))
        );
        t.repair(b(2)).unwrap();
        assert_eq!(t.repair(b(1)).unwrap_err(), TopologyError::LastBroker(b(1)));
        assert_eq!(t.leave(b(1)).unwrap_err(), TopologyError::LastBroker(b(1)));
    }
}
