//! The per-broker routing tables of the paper's Sec. 2: the
//! *Subscription Routing Table* (SRT, `{adv, lasthop}` pairs that route
//! subscriptions toward advertisers) and the *Publication Routing
//! Table* (PRT, `{sub, lasthop}` pairs that route publications toward
//! subscribers).
//!
//! To support the transactional reconfiguration protocol (Sec. 4.4 of
//! the paper), every entry can carry a *pending* routing configuration
//! tagged with the movement transaction id: the shadow copy `rc(adv′)`
//! that coexists with `rc(adv)` between prepare and commit. Publication
//! forwarding honours both the active and pending configurations during
//! that window (duplicates are suppressed per destination and, at the
//! client stub, by publication id).

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};
use transmob_pubsub::{
    AdvId, Advertisement, Filter, MoveId, Publication, SubId, Subscription,
};

use crate::messages::Hop;

/// Serializes struct-keyed maps as `(key, value)` pair sequences so
/// the routing state survives formats with string-only map keys
/// (JSON), per the Sec. 3.5 persistence sketch.
pub(crate) mod serde_pairs {
    use std::collections::BTreeMap;

    use serde::de::Deserializer;
    use serde::ser::Serializer;
    use serde::{Deserialize, Serialize};

    pub fn serialize<K, V, S>(map: &BTreeMap<K, V>, ser: S) -> Result<S::Ok, S::Error>
    where
        K: Serialize + Ord,
        V: Serialize,
        S: Serializer,
    {
        ser.collect_seq(map.iter())
    }

    pub fn deserialize<'de, K, V, D>(de: D) -> Result<BTreeMap<K, V>, D::Error>
    where
        K: Deserialize<'de> + Ord,
        V: Deserialize<'de>,
        D: Deserializer<'de>,
    {
        let pairs: Vec<(K, V)> = Vec::deserialize(de)?;
        Ok(pairs.into_iter().collect())
    }
}

/// A pending (shadow) routing configuration installed by an in-flight
/// movement transaction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PendingRoute {
    /// The movement transaction that installed this configuration.
    pub move_id: MoveId,
    /// The new lasthop the entry will have if the transaction commits.
    pub lasthop: Hop,
}

/// One SRT row: an advertisement, where it came from, and where it has
/// been forwarded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdvEntry {
    /// The advertisement.
    pub adv: Advertisement,
    /// Neighbour (or local client) the advertisement arrived from.
    pub lasthop: Hop,
    /// Neighbours this broker forwarded the advertisement to.
    pub sent_to: BTreeSet<transmob_pubsub::BrokerId>,
    /// Shadow configuration installed by an in-flight movement.
    pub pending: Option<PendingRoute>,
}

/// One PRT row: a subscription, where it came from, and where it has
/// been forwarded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubEntry {
    /// The subscription.
    pub sub: Subscription,
    /// Neighbour (or local client) the subscription arrived from; this
    /// is the direction publications are forwarded in.
    pub lasthop: Hop,
    /// Neighbours this broker forwarded the subscription to.
    pub sent_to: BTreeSet<transmob_pubsub::BrokerId>,
    /// Shadow configuration installed by an in-flight movement.
    pub pending: Option<PendingRoute>,
}

/// The Subscription Routing Table.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Srt {
    #[serde(with = "serde_pairs")]
    entries: BTreeMap<AdvId, AdvEntry>,
}

impl Srt {
    /// Creates an empty table.
    pub fn new() -> Self {
        Srt::default()
    }

    /// Inserts an advertisement arriving from `lasthop`. Returns `false`
    /// (leaving the row untouched) if the id is already present.
    pub fn insert(&mut self, adv: Advertisement, lasthop: Hop) -> bool {
        match self.entries.entry(adv.id) {
            Entry::Occupied(_) => false,
            Entry::Vacant(v) => {
                v.insert(AdvEntry {
                    adv,
                    lasthop,
                    sent_to: BTreeSet::new(),
                    pending: None,
                });
                true
            }
        }
    }

    /// Removes an advertisement, returning its row.
    pub fn remove(&mut self, id: AdvId) -> Option<AdvEntry> {
        self.entries.remove(&id)
    }

    /// Looks up a row.
    pub fn get(&self, id: AdvId) -> Option<&AdvEntry> {
        self.entries.get(&id)
    }

    /// Looks up a row mutably.
    pub fn get_mut(&mut self, id: AdvId) -> Option<&mut AdvEntry> {
        self.entries.get_mut(&id)
    }

    /// Iterates all rows.
    pub fn iter(&self) -> impl Iterator<Item = (&AdvId, &AdvEntry)> {
        self.entries.iter()
    }

    /// Iterates all rows mutably.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&AdvId, &mut AdvEntry)> {
        self.entries.iter_mut()
    }

    /// Ids of advertisements whose filter overlaps `filter`
    /// (the subscription-routing test).
    pub fn overlapping(&self, filter: &Filter) -> Vec<AdvId> {
        self.entries
            .iter()
            .filter(|(_, e)| e.adv.filter.overlaps(filter))
            .map(|(id, _)| *id)
            .collect()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Ids of rows with a pending configuration for `move_id`.
    pub fn pending_for(&self, move_id: MoveId) -> Vec<AdvId> {
        self.entries
            .iter()
            .filter(|(_, e)| e.pending.as_ref().is_some_and(|p| p.move_id == move_id))
            .map(|(id, _)| *id)
            .collect()
    }
}

/// The Publication Routing Table.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Prt {
    #[serde(with = "serde_pairs")]
    entries: BTreeMap<SubId, SubEntry>,
}

impl Prt {
    /// Creates an empty table.
    pub fn new() -> Self {
        Prt::default()
    }

    /// Inserts a subscription arriving from `lasthop`. Returns `false`
    /// (leaving the row untouched) if the id is already present.
    pub fn insert(&mut self, sub: Subscription, lasthop: Hop) -> bool {
        match self.entries.entry(sub.id) {
            Entry::Occupied(_) => false,
            Entry::Vacant(v) => {
                v.insert(SubEntry {
                    sub,
                    lasthop,
                    sent_to: BTreeSet::new(),
                    pending: None,
                });
                true
            }
        }
    }

    /// Removes a subscription, returning its row.
    pub fn remove(&mut self, id: SubId) -> Option<SubEntry> {
        self.entries.remove(&id)
    }

    /// Looks up a row.
    pub fn get(&self, id: SubId) -> Option<&SubEntry> {
        self.entries.get(&id)
    }

    /// Looks up a row mutably.
    pub fn get_mut(&mut self, id: SubId) -> Option<&mut SubEntry> {
        self.entries.get_mut(&id)
    }

    /// Iterates all rows.
    pub fn iter(&self) -> impl Iterator<Item = (&SubId, &SubEntry)> {
        self.entries.iter()
    }

    /// Iterates all rows mutably.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&SubId, &mut SubEntry)> {
        self.entries.iter_mut()
    }

    /// Ids of subscriptions whose filter matches `publication`
    /// (the publication-forwarding test).
    pub fn matching(&self, publication: &Publication) -> Vec<SubId> {
        self.entries
            .iter()
            .filter(|(_, e)| e.sub.filter.matches(publication))
            .map(|(id, _)| *id)
            .collect()
    }

    /// Ids of subscriptions whose filter overlaps `filter`.
    pub fn overlapping(&self, filter: &Filter) -> Vec<SubId> {
        self.entries
            .iter()
            .filter(|(_, e)| e.sub.filter.overlaps(filter))
            .map(|(id, _)| *id)
            .collect()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Ids of rows with a pending configuration for `move_id`.
    pub fn pending_for(&self, move_id: MoveId) -> Vec<SubId> {
        self.entries
            .iter()
            .filter(|(_, e)| e.pending.as_ref().is_some_and(|p| p.move_id == move_id))
            .map(|(id, _)| *id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transmob_pubsub::{BrokerId, ClientId, Filter};

    fn sub(c: u64, seq: u32, lo: i64, hi: i64) -> Subscription {
        Subscription::new(
            SubId::new(ClientId(c), seq),
            Filter::builder().ge("x", lo).le("x", hi).build(),
        )
    }

    fn adv(c: u64, seq: u32, lo: i64, hi: i64) -> Advertisement {
        Advertisement::new(
            AdvId::new(ClientId(c), seq),
            Filter::builder().ge("x", lo).le("x", hi).build(),
        )
    }

    #[test]
    fn srt_insert_and_duplicate() {
        let mut srt = Srt::new();
        let a = adv(1, 0, 0, 10);
        assert!(srt.insert(a.clone(), Hop::Client(ClientId(1))));
        assert!(!srt.insert(a.clone(), Hop::Broker(BrokerId(2))));
        // first insert wins
        assert_eq!(srt.get(a.id).unwrap().lasthop, Hop::Client(ClientId(1)));
        assert_eq!(srt.len(), 1);
    }

    #[test]
    fn srt_overlapping_query() {
        let mut srt = Srt::new();
        srt.insert(adv(1, 0, 0, 10), Hop::Broker(BrokerId(2)));
        srt.insert(adv(1, 1, 50, 60), Hop::Broker(BrokerId(3)));
        let f = Filter::builder().ge("x", 5).le("x", 8).build();
        let hits = srt.overlapping(&f);
        assert_eq!(hits, vec![AdvId::new(ClientId(1), 0)]);
    }

    #[test]
    fn prt_matching_query() {
        let mut prt = Prt::new();
        prt.insert(sub(1, 0, 0, 10), Hop::Client(ClientId(1)));
        prt.insert(sub(2, 0, 5, 20), Hop::Broker(BrokerId(4)));
        let p = Publication::new().with("x", 7);
        let hits = prt.matching(&p);
        assert_eq!(hits.len(), 2);
        let p2 = Publication::new().with("x", 15);
        assert_eq!(prt.matching(&p2), vec![SubId::new(ClientId(2), 0)]);
    }

    #[test]
    fn remove_returns_row() {
        let mut prt = Prt::new();
        let s = sub(1, 0, 0, 10);
        prt.insert(s.clone(), Hop::Client(ClientId(1)));
        let row = prt.remove(s.id).unwrap();
        assert_eq!(row.lasthop, Hop::Client(ClientId(1)));
        assert!(prt.remove(s.id).is_none());
        assert!(prt.is_empty());
    }

    #[test]
    fn pending_for_finds_tagged_rows() {
        let mut prt = Prt::new();
        let s1 = sub(1, 0, 0, 10);
        let s2 = sub(2, 0, 0, 10);
        prt.insert(s1.clone(), Hop::Client(ClientId(1)));
        prt.insert(s2.clone(), Hop::Client(ClientId(2)));
        prt.get_mut(s1.id).unwrap().pending = Some(PendingRoute {
            move_id: MoveId(9),
            lasthop: Hop::Broker(BrokerId(3)),
        });
        assert_eq!(prt.pending_for(MoveId(9)), vec![s1.id]);
        assert!(prt.pending_for(MoveId(8)).is_empty());
    }
}
