//! The per-broker routing tables of the paper's Sec. 2: the
//! *Subscription Routing Table* (SRT, `{adv, lasthop}` pairs that route
//! subscriptions toward advertisers) and the *Publication Routing
//! Table* (PRT, `{sub, lasthop}` pairs that route publications toward
//! subscribers).
//!
//! To support the transactional reconfiguration protocol (Sec. 4.4 of
//! the paper), every entry can carry a *pending* routing configuration
//! tagged with the movement transaction id: the shadow copy `rc(adv′)`
//! that coexists with `rc(adv)` between prepare and commit. Publication
//! forwarding honours both the active and pending configurations during
//! that window (duplicates are suppressed per destination and, at the
//! client stub, by publication id).

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};
use transmob_pubsub::fasthash::FastMap;
use transmob_pubsub::{
    AdvId, Advertisement, Filter, MatchIndex, MoveId, Parallelism, Publication, SubId, Subscription,
};

use crate::messages::Hop;

/// Serializes struct-keyed maps as `(key, value)` pair sequences so
/// the routing state survives formats with string-only map keys
/// (JSON), per the Sec. 3.5 persistence sketch.
pub(crate) mod serde_pairs {
    use std::collections::BTreeMap;

    use serde::de::Deserializer;
    use serde::ser::Serializer;
    use serde::{Deserialize, Serialize};

    pub fn serialize<K, V, S>(map: &BTreeMap<K, V>, ser: S) -> Result<S::Ok, S::Error>
    where
        K: Serialize + Ord,
        V: Serialize,
        S: Serializer,
    {
        ser.collect_seq(map.iter())
    }

    pub fn deserialize<'de, K, V, D>(de: D) -> Result<BTreeMap<K, V>, D::Error>
    where
        K: Deserialize<'de> + Ord,
        V: Deserialize<'de>,
        D: Deserializer<'de>,
    {
        let pairs: Vec<(K, V)> = Vec::deserialize(de)?;
        Ok(pairs.into_iter().collect())
    }
}

/// A pending (shadow) routing configuration installed by an in-flight
/// movement transaction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PendingRoute {
    /// The movement transaction that installed this configuration.
    pub move_id: MoveId,
    /// The new lasthop the entry will have if the transaction commits.
    pub lasthop: Hop,
}

/// One SRT row: an advertisement, where it came from, and where it has
/// been forwarded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdvEntry {
    /// The advertisement.
    pub adv: Advertisement,
    /// Neighbour (or local client) the advertisement arrived from
    /// first: the *primary* parent in this advertisement's routing
    /// tree.
    pub lasthop: Hop,
    /// On cyclic overlays (multipath mode): additional neighbours the
    /// same advertisement later arrived from. Each is a redundant
    /// route toward the advertiser; subscriptions are forwarded along
    /// these too, so publications reach this broker over every
    /// surviving path. Always empty on tree overlays.
    #[serde(default)]
    pub alt_lasthops: BTreeSet<transmob_pubsub::BrokerId>,
    /// Neighbours this broker forwarded the advertisement to.
    pub sent_to: BTreeSet<transmob_pubsub::BrokerId>,
    /// Shadow configuration installed by an in-flight movement.
    pub pending: Option<PendingRoute>,
}

/// One PRT row: a subscription, where it came from, and where it has
/// been forwarded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubEntry {
    /// The subscription.
    pub sub: Subscription,
    /// Neighbour (or local client) the subscription arrived from
    /// first; this is the primary direction publications are forwarded
    /// in.
    pub lasthop: Hop,
    /// On cyclic overlays (multipath mode): additional neighbours the
    /// same subscription later arrived from. Publications matching the
    /// row are forwarded along these hops as well; the per-broker
    /// dedup window keeps delivery exactly-once. Always empty on tree
    /// overlays.
    #[serde(default)]
    pub alt_lasthops: BTreeSet<transmob_pubsub::BrokerId>,
    /// Neighbours this broker forwarded the subscription to.
    pub sent_to: BTreeSet<transmob_pubsub::BrokerId>,
    /// Shadow configuration installed by an in-flight movement.
    pub pending: Option<PendingRoute>,
}

/// The Subscription Routing Table.
///
/// Filter queries ([`Srt::overlapping`]) are served by an
/// attribute-indexed counting [`MatchIndex`] kept in sync with the
/// rows; the index is rebuilt from the rows on deserialization and
/// asserted against the linear-scan oracle in debug builds.
///
/// The mutable accessors ([`Srt::get_mut`], [`Srt::iter_mut`]) exist
/// for the `lasthop`/`sent_to`/`pending` bookkeeping of the broker
/// core; callers must not mutate an entry's *filter* through them, or
/// the index would go stale. Replacing a filter requires
/// remove-then-insert.
#[derive(Debug, Clone, Default)]
pub struct Srt {
    entries: BTreeMap<AdvId, AdvEntry>,
    index: MatchIndex<AdvId>,
}

impl PartialEq for Srt {
    fn eq(&self, other: &Self) -> bool {
        // The index is derived state; two tables are equal iff their
        // rows are.
        self.entries == other.entries
    }
}

impl Serialize for Srt {
    fn serialize<S: serde::ser::Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        serde_pairs::serialize(&self.entries, ser)
    }
}

impl<'de> Deserialize<'de> for Srt {
    fn deserialize<D: serde::de::Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        Srt::from_pairs(Vec::deserialize(de)?).map_err(serde::de::Error::custom)
    }
}

impl Srt {
    /// Creates an empty table.
    pub fn new() -> Self {
        Srt::default()
    }

    /// Reconfigures the match index's sharding / worker pool (answers
    /// are identical under every configuration).
    pub fn set_parallelism(&mut self, par: Parallelism) {
        self.index.set_parallelism(par);
    }

    /// The match index's current sharding configuration.
    pub fn parallelism(&self) -> Parallelism {
        self.index.parallelism()
    }

    /// Rebuilds a table (and its match index) from persisted rows.
    ///
    /// Ids are bound to immutable filters (the same invariant the live
    /// insert path enforces), so a persisted snapshot carrying one id
    /// twice with *conflicting* filters is corrupt and is rejected
    /// rather than silently resolved last-writer-wins. Byte-identical
    /// duplicate rows are tolerated (first wins), mirroring the
    /// idempotent duplicate suppression of [`Srt::insert`].
    fn from_pairs(pairs: Vec<(AdvId, AdvEntry)>) -> Result<Self, String> {
        let mut entries: BTreeMap<AdvId, AdvEntry> = BTreeMap::new();
        for (id, e) in pairs {
            match entries.entry(id) {
                Entry::Occupied(existing) => {
                    if *existing.get() != e {
                        return Err(format!(
                            "SRT snapshot carries advertisement {id} twice with \
                             conflicting rows"
                        ));
                    }
                }
                Entry::Vacant(v) => {
                    v.insert(e);
                }
            }
        }
        let mut index = MatchIndex::new();
        for (id, e) in &entries {
            index.insert(*id, &e.adv.filter);
        }
        Ok(Srt { entries, index })
    }

    /// Inserts an advertisement arriving from `lasthop`. Returns `false`
    /// (leaving the row untouched) if the id is already present.
    ///
    /// A re-insert with the *same* filter is the normal idempotent
    /// duplicate-suppression path. A re-insert with a *different*
    /// filter under the same id is a protocol violation (ids are bound
    /// to immutable filters); it is reported — loudly in debug builds —
    /// and the original row is kept.
    pub fn insert(&mut self, adv: Advertisement, lasthop: Hop) -> bool {
        match self.entries.entry(adv.id) {
            Entry::Occupied(existing) => {
                if existing.get().adv.filter != adv.filter {
                    debug_assert!(
                        false,
                        "advertisement {} re-inserted with a different filter \
                         (kept {}, ignored {})",
                        adv.id,
                        existing.get().adv.filter,
                        adv.filter
                    );
                    eprintln!(
                        "transmob-broker: ignoring re-advertisement of {} with a \
                         different filter; the original row is kept",
                        adv.id
                    );
                }
                false
            }
            Entry::Vacant(v) => {
                self.index.insert(adv.id, &adv.filter);
                v.insert(AdvEntry {
                    adv,
                    lasthop,
                    alt_lasthops: BTreeSet::new(),
                    sent_to: BTreeSet::new(),
                    pending: None,
                });
                true
            }
        }
    }

    /// Removes an advertisement, returning its row.
    pub fn remove(&mut self, id: AdvId) -> Option<AdvEntry> {
        let row = self.entries.remove(&id);
        if row.is_some() {
            self.index.remove(&id);
        }
        row
    }

    /// Looks up a row.
    pub fn get(&self, id: AdvId) -> Option<&AdvEntry> {
        self.entries.get(&id)
    }

    /// Looks up a row mutably (for hop bookkeeping — never mutate the
    /// filter; see the type docs).
    pub fn get_mut(&mut self, id: AdvId) -> Option<&mut AdvEntry> {
        self.entries.get_mut(&id)
    }

    /// Iterates all rows.
    pub fn iter(&self) -> impl Iterator<Item = (&AdvId, &AdvEntry)> {
        self.entries.iter()
    }

    /// Iterates all rows mutably (for hop bookkeeping — never mutate
    /// the filter; see the type docs).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&AdvId, &mut AdvEntry)> {
        self.entries.iter_mut()
    }

    /// Ids of advertisements whose filter overlaps `filter`
    /// (the subscription-routing test). Served by the counting index.
    pub fn overlapping(&self, filter: &Filter) -> Vec<AdvId> {
        let out = self.index.overlapping(filter);
        debug_assert_eq!(
            out,
            self.overlapping_linear(filter),
            "match index diverged from the linear overlap scan"
        );
        out
    }

    /// Reference implementation of [`Srt::overlapping`]: the full
    /// linear scan. Kept as the differential oracle for the index (and
    /// as the benchmark baseline).
    pub fn overlapping_linear(&self, filter: &Filter) -> Vec<AdvId> {
        self.entries
            .iter()
            .filter(|(_, e)| e.adv.filter.overlaps(filter))
            .map(|(id, _)| *id)
            .collect()
    }

    /// Overlap query joined with the routing hops the broker needs:
    /// for every overlapping row, its id, active lasthop, and pending
    /// (shadow) lasthop if a movement transaction is in flight. This
    /// is the one API the broker core routes subscriptions through, so
    /// active and pending configurations are considered in one place.
    pub fn overlapping_routes(&self, filter: &Filter) -> Vec<(AdvId, Hop, Option<Hop>)> {
        self.overlapping(filter)
            .into_iter()
            .map(|id| {
                // unwrap: the index never returns ids without a row
                let e = &self.entries[&id];
                (id, e.lasthop, e.pending.as_ref().map(|p| p.lasthop))
            })
            .collect()
    }

    /// Ids of advertisements whose filter *covers* `filter` (the
    /// advertisement-quench test). Served by the dual-endpoint
    /// containment structure of the counting index.
    pub fn covering(&self, filter: &Filter) -> Vec<AdvId> {
        let out = self.index.covering(filter);
        debug_assert_eq!(
            out,
            self.covering_linear(filter),
            "match index diverged from the linear covering scan"
        );
        out
    }

    /// Reference implementation of [`Srt::covering`]: the full linear
    /// scan. Kept as the differential oracle for the index (and as the
    /// benchmark baseline).
    pub fn covering_linear(&self, filter: &Filter) -> Vec<AdvId> {
        self.entries
            .iter()
            .filter(|(_, e)| e.adv.filter.covers(filter))
            .map(|(id, _)| *id)
            .collect()
    }

    /// Ids of advertisements `filter` covers (the active-retraction /
    /// covering-release candidate set). Served by the dual-endpoint
    /// containment structure of the counting index.
    pub fn covered_by(&self, filter: &Filter) -> Vec<AdvId> {
        let out = self.index.covered_by(filter);
        debug_assert_eq!(
            out,
            self.covered_by_linear(filter),
            "match index diverged from the linear covered-by scan"
        );
        out
    }

    /// Reference implementation of [`Srt::covered_by`]: the full
    /// linear scan.
    pub fn covered_by_linear(&self, filter: &Filter) -> Vec<AdvId> {
        self.entries
            .iter()
            .filter(|(_, e)| filter.covers(&e.adv.filter))
            .map(|(id, _)| *id)
            .collect()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Ids of rows with a pending configuration for `move_id`.
    pub fn pending_for(&self, move_id: MoveId) -> Vec<AdvId> {
        self.entries
            .iter()
            .filter(|(_, e)| e.pending.as_ref().is_some_and(|p| p.move_id == move_id))
            .map(|(id, _)| *id)
            .collect()
    }
}

/// The Publication Routing Table.
///
/// Publication matching ([`Prt::matching`]) and filter overlap
/// ([`Prt::overlapping`]) are served by an attribute-indexed counting
/// [`MatchIndex`] kept in sync with the rows; the index is rebuilt
/// from the rows on deserialization and asserted against the
/// linear-scan oracle in debug builds.
///
/// As with [`Srt`], the mutable accessors are for hop bookkeeping
/// only — never mutate an entry's filter through them.
#[derive(Debug, Clone, Default)]
pub struct Prt {
    entries: BTreeMap<SubId, SubEntry>,
    index: MatchIndex<SubId>,
    /// Routing-state version: bumped by every mutable access that
    /// could change what [`Prt::matching_routes_batch`] answers (row
    /// churn *and* hop/pending bookkeeping through the mutable
    /// accessors, counted conservatively). The pipelined broker loops
    /// stamp pre-computed routes with this and discard them if the
    /// table has moved on ([`Prt::routing_version`]).
    version: u64,
}

impl PartialEq for Prt {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl Serialize for Prt {
    fn serialize<S: serde::ser::Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        serde_pairs::serialize(&self.entries, ser)
    }
}

impl<'de> Deserialize<'de> for Prt {
    fn deserialize<D: serde::de::Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        Prt::from_pairs(Vec::deserialize(de)?).map_err(serde::de::Error::custom)
    }
}

impl Prt {
    /// Creates an empty table.
    pub fn new() -> Self {
        Prt::default()
    }

    /// Reconfigures the match index's sharding / worker pool (answers
    /// are identical under every configuration).
    pub fn set_parallelism(&mut self, par: Parallelism) {
        self.index.set_parallelism(par);
    }

    /// The match index's current sharding configuration.
    pub fn parallelism(&self) -> Parallelism {
        self.index.parallelism()
    }

    /// Rebuilds a table (and its match index) from persisted rows.
    ///
    /// Same contract as [`Srt::from_pairs`]: one id appearing twice
    /// with conflicting rows marks the snapshot corrupt and is
    /// rejected; byte-identical duplicates are tolerated (first wins).
    fn from_pairs(pairs: Vec<(SubId, SubEntry)>) -> Result<Self, String> {
        let mut entries: BTreeMap<SubId, SubEntry> = BTreeMap::new();
        for (id, e) in pairs {
            match entries.entry(id) {
                Entry::Occupied(existing) => {
                    if *existing.get() != e {
                        return Err(format!(
                            "PRT snapshot carries subscription {id} twice with \
                             conflicting rows"
                        ));
                    }
                }
                Entry::Vacant(v) => {
                    v.insert(e);
                }
            }
        }
        let mut index = MatchIndex::new();
        for (id, e) in &entries {
            index.insert(*id, &e.sub.filter);
        }
        Ok(Prt {
            entries,
            index,
            version: 0,
        })
    }

    /// Inserts a subscription arriving from `lasthop`. Returns `false`
    /// (leaving the row untouched) if the id is already present.
    ///
    /// Same contract as [`Srt::insert`]: equal-filter re-inserts are
    /// silent duplicate suppression, differing-filter re-inserts are a
    /// reported protocol violation and the original row is kept.
    pub fn insert(&mut self, sub: Subscription, lasthop: Hop) -> bool {
        self.version = self.version.wrapping_add(1);
        match self.entries.entry(sub.id) {
            Entry::Occupied(existing) => {
                if existing.get().sub.filter != sub.filter {
                    debug_assert!(
                        false,
                        "subscription {} re-inserted with a different filter \
                         (kept {}, ignored {})",
                        sub.id,
                        existing.get().sub.filter,
                        sub.filter
                    );
                    eprintln!(
                        "transmob-broker: ignoring re-subscription of {} with a \
                         different filter; the original row is kept",
                        sub.id
                    );
                }
                false
            }
            Entry::Vacant(v) => {
                self.index.insert(sub.id, &sub.filter);
                v.insert(SubEntry {
                    sub,
                    lasthop,
                    alt_lasthops: BTreeSet::new(),
                    sent_to: BTreeSet::new(),
                    pending: None,
                });
                true
            }
        }
    }

    /// Removes a subscription, returning its row.
    pub fn remove(&mut self, id: SubId) -> Option<SubEntry> {
        self.version = self.version.wrapping_add(1);
        let row = self.entries.remove(&id);
        if row.is_some() {
            self.index.remove(&id);
        }
        row
    }

    /// Looks up a row.
    pub fn get(&self, id: SubId) -> Option<&SubEntry> {
        self.entries.get(&id)
    }

    /// Looks up a row mutably (for hop bookkeeping — never mutate the
    /// filter; see the type docs).
    pub fn get_mut(&mut self, id: SubId) -> Option<&mut SubEntry> {
        self.version = self.version.wrapping_add(1);
        self.entries.get_mut(&id)
    }

    /// Iterates all rows.
    pub fn iter(&self) -> impl Iterator<Item = (&SubId, &SubEntry)> {
        self.entries.iter()
    }

    /// Iterates all rows mutably (for hop bookkeeping — never mutate
    /// the filter; see the type docs).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&SubId, &mut SubEntry)> {
        self.version = self.version.wrapping_add(1);
        self.entries.iter_mut()
    }

    /// The routing-state version stamp (see the `version` field): two
    /// equal stamps from the same table guarantee
    /// [`Prt::matching_routes_batch`] would answer identically.
    pub fn routing_version(&self) -> u64 {
        self.version
    }

    /// Ids of subscriptions whose filter matches `publication`
    /// (the publication-forwarding test). Served by the counting index.
    pub fn matching(&self, publication: &Publication) -> Vec<SubId> {
        let out = self.index.matching(publication);
        debug_assert_eq!(
            out,
            self.matching_linear(publication),
            "match index diverged from the linear matching scan"
        );
        out
    }

    /// Reference implementation of [`Prt::matching`]: the full linear
    /// scan. Kept as the differential oracle for the index (and as the
    /// benchmark baseline).
    pub fn matching_linear(&self, publication: &Publication) -> Vec<SubId> {
        self.entries
            .iter()
            .filter(|(_, e)| e.sub.filter.matches(publication))
            .map(|(id, _)| *id)
            .collect()
    }

    /// Matching query joined with the routing hops the broker needs:
    /// for every matching row, its id, active lasthop, and pending
    /// (shadow) lasthop if a movement transaction is in flight. This
    /// is the one API publication forwarding goes through, so the
    /// prepare–commit window (where both configurations must receive
    /// traffic) is honoured in one place.
    pub fn matching_routes(&self, publication: &Publication) -> Vec<(SubId, Hop, Option<Hop>)> {
        self.matching(publication)
            .into_iter()
            .map(|id| {
                // unwrap: the index never returns ids without a row
                let e = &self.entries[&id];
                (id, e.lasthop, e.pending.as_ref().map(|p| p.lasthop))
            })
            .collect()
    }

    /// [`Prt::matching`] for every publication of a batch, in batch
    /// order. Served by the counting index's amortized sweep
    /// ([`MatchIndex::matching_batch`]); identical to mapping
    /// [`Prt::matching`] over the slice (asserted in debug builds).
    pub fn matching_batch(&self, publications: &[Publication]) -> Vec<Vec<SubId>> {
        let out = self.index.matching_batch(publications);
        #[cfg(debug_assertions)]
        for (i, p) in publications.iter().enumerate() {
            debug_assert_eq!(
                out[i],
                self.matching_linear(p),
                "batch match index diverged from the linear matching scan"
            );
        }
        out
    }

    /// [`Prt::matching_routes`] for every publication of a batch, in
    /// batch order: the amortized matching sweep joined with the
    /// active and pending lasthops publication forwarding needs.
    ///
    /// Matching ids repeat heavily across a batch (hot subscriptions
    /// match most publications), so the row lookup is cached per
    /// distinct id: one tree walk per distinct subscription, a hash
    /// probe per repeat.
    pub fn matching_routes_batch(
        &self,
        publications: &[Publication],
    ) -> Vec<Vec<(SubId, Hop, Option<Hop>)>> {
        let mut routes: FastMap<SubId, (Hop, Option<Hop>)> = FastMap::default();
        self.matching_batch(publications)
            .into_iter()
            .map(|ids| {
                ids.into_iter()
                    .map(|id| {
                        let (lasthop, pending) = *routes.entry(id).or_insert_with(|| {
                            // unwrap: the index never returns ids
                            // without a row
                            let e = &self.entries[&id];
                            (e.lasthop, e.pending.as_ref().map(|p| p.lasthop))
                        });
                        (id, lasthop, pending)
                    })
                    .collect()
            })
            .collect()
    }

    /// Ids of subscriptions whose filter overlaps `filter`. Served by
    /// the counting index.
    pub fn overlapping(&self, filter: &Filter) -> Vec<SubId> {
        let out = self.index.overlapping(filter);
        debug_assert_eq!(
            out,
            self.overlapping_linear(filter),
            "match index diverged from the linear overlap scan"
        );
        out
    }

    /// Reference implementation of [`Prt::overlapping`]: the full
    /// linear scan.
    pub fn overlapping_linear(&self, filter: &Filter) -> Vec<SubId> {
        self.entries
            .iter()
            .filter(|(_, e)| e.sub.filter.overlaps(filter))
            .map(|(id, _)| *id)
            .collect()
    }

    /// Ids of subscriptions whose filter *covers* `filter` (the
    /// subscription-quench test). Served by the dual-endpoint
    /// containment structure of the counting index.
    pub fn covering(&self, filter: &Filter) -> Vec<SubId> {
        let out = self.index.covering(filter);
        debug_assert_eq!(
            out,
            self.covering_linear(filter),
            "match index diverged from the linear covering scan"
        );
        out
    }

    /// Reference implementation of [`Prt::covering`]: the full linear
    /// scan. Kept as the differential oracle for the index (and as the
    /// benchmark baseline).
    pub fn covering_linear(&self, filter: &Filter) -> Vec<SubId> {
        self.entries
            .iter()
            .filter(|(_, e)| e.sub.filter.covers(filter))
            .map(|(id, _)| *id)
            .collect()
    }

    /// Ids of subscriptions `filter` covers (the active-retraction /
    /// covering-release candidate set that dominates the paper's
    /// mobility unsubscribe bursts). Served by the dual-endpoint
    /// containment structure of the counting index.
    pub fn covered_by(&self, filter: &Filter) -> Vec<SubId> {
        let out = self.index.covered_by(filter);
        debug_assert_eq!(
            out,
            self.covered_by_linear(filter),
            "match index diverged from the linear covered-by scan"
        );
        out
    }

    /// Reference implementation of [`Prt::covered_by`]: the full
    /// linear scan.
    pub fn covered_by_linear(&self, filter: &Filter) -> Vec<SubId> {
        self.entries
            .iter()
            .filter(|(_, e)| filter.covers(&e.sub.filter))
            .map(|(id, _)| *id)
            .collect()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Ids of rows with a pending configuration for `move_id`.
    pub fn pending_for(&self, move_id: MoveId) -> Vec<SubId> {
        self.entries
            .iter()
            .filter(|(_, e)| e.pending.as_ref().is_some_and(|p| p.move_id == move_id))
            .map(|(id, _)| *id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transmob_pubsub::{BrokerId, ClientId, Filter};

    fn sub(c: u64, seq: u32, lo: i64, hi: i64) -> Subscription {
        Subscription::new(
            SubId::new(ClientId(c), seq),
            Filter::builder().ge("x", lo).le("x", hi).build(),
        )
    }

    fn adv(c: u64, seq: u32, lo: i64, hi: i64) -> Advertisement {
        Advertisement::new(
            AdvId::new(ClientId(c), seq),
            Filter::builder().ge("x", lo).le("x", hi).build(),
        )
    }

    #[test]
    fn srt_insert_and_duplicate() {
        let mut srt = Srt::new();
        let a = adv(1, 0, 0, 10);
        assert!(srt.insert(a.clone(), Hop::Client(ClientId(1))));
        assert!(!srt.insert(a.clone(), Hop::Broker(BrokerId(2))));
        // first insert wins
        assert_eq!(srt.get(a.id).unwrap().lasthop, Hop::Client(ClientId(1)));
        assert_eq!(srt.len(), 1);
    }

    #[test]
    fn srt_overlapping_query() {
        let mut srt = Srt::new();
        srt.insert(adv(1, 0, 0, 10), Hop::Broker(BrokerId(2)));
        srt.insert(adv(1, 1, 50, 60), Hop::Broker(BrokerId(3)));
        let f = Filter::builder().ge("x", 5).le("x", 8).build();
        let hits = srt.overlapping(&f);
        assert_eq!(hits, vec![AdvId::new(ClientId(1), 0)]);
    }

    #[test]
    fn prt_matching_query() {
        let mut prt = Prt::new();
        prt.insert(sub(1, 0, 0, 10), Hop::Client(ClientId(1)));
        prt.insert(sub(2, 0, 5, 20), Hop::Broker(BrokerId(4)));
        let p = Publication::new().with("x", 7);
        let hits = prt.matching(&p);
        assert_eq!(hits.len(), 2);
        let p2 = Publication::new().with("x", 15);
        assert_eq!(prt.matching(&p2), vec![SubId::new(ClientId(2), 0)]);
    }

    #[test]
    fn remove_returns_row() {
        let mut prt = Prt::new();
        let s = sub(1, 0, 0, 10);
        prt.insert(s.clone(), Hop::Client(ClientId(1)));
        let row = prt.remove(s.id).unwrap();
        assert_eq!(row.lasthop, Hop::Client(ClientId(1)));
        assert!(prt.remove(s.id).is_none());
        assert!(prt.is_empty());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "different filter")]
    fn srt_reinsert_with_different_filter_is_detected() {
        let mut srt = Srt::new();
        srt.insert(adv(1, 0, 0, 10), Hop::Client(ClientId(1)));
        srt.insert(adv(1, 0, 5, 25), Hop::Client(ClientId(1)));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "different filter")]
    fn prt_reinsert_with_different_filter_is_detected() {
        let mut prt = Prt::new();
        prt.insert(sub(1, 0, 0, 10), Hop::Client(ClientId(1)));
        prt.insert(sub(1, 0, 5, 25), Hop::Client(ClientId(1)));
    }

    #[test]
    fn matching_routes_exposes_active_and_pending_hops() {
        let mut prt = Prt::new();
        let s1 = sub(1, 0, 0, 10);
        let s2 = sub(2, 0, 5, 20);
        prt.insert(s1.clone(), Hop::Client(ClientId(1)));
        prt.insert(s2.clone(), Hop::Broker(BrokerId(4)));
        prt.get_mut(s1.id).unwrap().pending = Some(PendingRoute {
            move_id: MoveId(3),
            lasthop: Hop::Broker(BrokerId(7)),
        });
        let routes = prt.matching_routes(&Publication::new().with("x", 7));
        assert_eq!(
            routes,
            vec![
                (
                    s1.id,
                    Hop::Client(ClientId(1)),
                    Some(Hop::Broker(BrokerId(7)))
                ),
                (s2.id, Hop::Broker(BrokerId(4)), None),
            ]
        );
    }

    #[test]
    fn batch_matching_routes_agree_with_per_publication_routes() {
        let mut prt = Prt::new();
        let s1 = sub(1, 0, 0, 10);
        let s2 = sub(2, 0, 5, 20);
        prt.insert(s1.clone(), Hop::Client(ClientId(1)));
        prt.insert(s2.clone(), Hop::Broker(BrokerId(4)));
        prt.get_mut(s1.id).unwrap().pending = Some(PendingRoute {
            move_id: MoveId(3),
            lasthop: Hop::Broker(BrokerId(7)),
        });
        let batch: Vec<Publication> = [7i64, 15, 40, 0]
            .into_iter()
            .map(|x| Publication::new().with("x", x))
            .collect();
        let got = prt.matching_routes_batch(&batch);
        assert_eq!(got.len(), batch.len());
        for (i, p) in batch.iter().enumerate() {
            assert_eq!(got[i], prt.matching_routes(p), "probe {i}");
        }
    }

    #[test]
    fn tables_survive_serde_round_trip_with_live_index() {
        let mut prt = Prt::new();
        prt.insert(sub(1, 0, 0, 10), Hop::Client(ClientId(1)));
        prt.insert(sub(2, 0, 5, 20), Hop::Broker(BrokerId(4)));
        let mut srt = Srt::new();
        srt.insert(adv(1, 0, 0, 10), Hop::Broker(BrokerId(2)));
        let prt2: Prt = serde_json::from_str(&serde_json::to_string(&prt).unwrap()).unwrap();
        let srt2: Srt = serde_json::from_str(&serde_json::to_string(&srt).unwrap()).unwrap();
        assert_eq!(prt, prt2);
        assert_eq!(srt, srt2);
        // The rebuilt indexes answer queries (the debug oracle inside
        // matching/overlapping cross-checks them against the scan).
        let p = Publication::new().with("x", 7);
        assert_eq!(prt2.matching(&p), prt.matching(&p));
        let f = Filter::builder().ge("x", 5).le("x", 8).build();
        assert_eq!(srt2.overlapping(&f), srt.overlapping(&f));
    }

    #[test]
    fn index_tracks_churn() {
        let mut prt = Prt::new();
        let s = sub(1, 0, 0, 10);
        let p = Publication::new().with("x", 5);
        prt.insert(s.clone(), Hop::Client(ClientId(1)));
        assert_eq!(prt.matching(&p), vec![s.id]);
        prt.remove(s.id);
        assert!(prt.matching(&p).is_empty());
        // Re-insert after removal with a *different* filter is legal
        // (the id is free again).
        let s2 = Subscription::new(
            SubId::new(ClientId(1), 0),
            Filter::builder().ge("x", 100).build(),
        );
        prt.insert(s2.clone(), Hop::Client(ClientId(1)));
        assert!(prt.matching(&p).is_empty());
        assert_eq!(
            prt.matching(&Publication::new().with("x", 150)),
            vec![s2.id]
        );
    }

    #[test]
    fn covering_and_covered_by_queries() {
        let mut prt = Prt::new();
        let root = sub(1, 0, 0, 100);
        let leaf = sub(2, 0, 10, 20);
        let outside = sub(3, 0, 500, 600);
        prt.insert(root.clone(), Hop::Client(ClientId(1)));
        prt.insert(leaf.clone(), Hop::Client(ClientId(2)));
        prt.insert(outside.clone(), Hop::Client(ClientId(3)));
        // Who covers the leaf? The root and the leaf itself.
        assert_eq!(prt.covering(&leaf.filter), vec![root.id, leaf.id]);
        // Whom does the root cover? Itself and the leaf.
        assert_eq!(prt.covered_by(&root.filter), vec![root.id, leaf.id]);
        let mut srt = Srt::new();
        srt.insert(adv(1, 0, 0, 100), Hop::Broker(BrokerId(2)));
        srt.insert(adv(2, 0, 10, 20), Hop::Broker(BrokerId(3)));
        assert_eq!(
            srt.covering(&Filter::builder().ge("x", 10).le("x", 20).build()),
            vec![AdvId::new(ClientId(1), 0), AdvId::new(ClientId(2), 0)]
        );
        assert_eq!(
            srt.covered_by(&Filter::builder().ge("x", 5).le("x", 25).build()),
            vec![AdvId::new(ClientId(2), 0)]
        );
    }

    #[test]
    fn deserialize_rejects_conflicting_duplicate_ids() {
        // A snapshot carrying one id twice with different filters must
        // not load last-writer-wins: the rebuild path rejects it.
        let mk = |lo: i64, hi: i64| SubEntry {
            sub: sub(1, 0, lo, hi),
            lasthop: Hop::Client(ClientId(1)),
            alt_lasthops: BTreeSet::new(),
            sent_to: BTreeSet::new(),
            pending: None,
        };
        let conflicting = vec![
            (SubId::new(ClientId(1), 0), mk(0, 10)),
            (SubId::new(ClientId(1), 0), mk(5, 25)),
        ];
        let json = serde_json::to_string(&conflicting).unwrap();
        let err = serde_json::from_str::<Prt>(&json).unwrap_err();
        assert!(err.to_string().contains("conflicting"), "err: {err}");
        // Byte-identical duplicates are the idempotent case: tolerated.
        let duplicated = vec![
            (SubId::new(ClientId(1), 0), mk(0, 10)),
            (SubId::new(ClientId(1), 0), mk(0, 10)),
        ];
        let json = serde_json::to_string(&duplicated).unwrap();
        let prt: Prt = serde_json::from_str(&json).unwrap();
        assert_eq!(prt.len(), 1);

        let mk_adv = |lo: i64, hi: i64| AdvEntry {
            adv: adv(1, 0, lo, hi),
            lasthop: Hop::Broker(BrokerId(2)),
            alt_lasthops: BTreeSet::new(),
            sent_to: BTreeSet::new(),
            pending: None,
        };
        let conflicting = vec![
            (AdvId::new(ClientId(1), 0), mk_adv(0, 10)),
            (AdvId::new(ClientId(1), 0), mk_adv(5, 25)),
        ];
        let json = serde_json::to_string(&conflicting).unwrap();
        let err = serde_json::from_str::<Srt>(&json).unwrap_err();
        assert!(err.to_string().contains("conflicting"), "err: {err}");
    }

    #[test]
    fn pending_for_finds_tagged_rows() {
        let mut prt = Prt::new();
        let s1 = sub(1, 0, 0, 10);
        let s2 = sub(2, 0, 0, 10);
        prt.insert(s1.clone(), Hop::Client(ClientId(1)));
        prt.insert(s2.clone(), Hop::Client(ClientId(2)));
        prt.get_mut(s1.id).unwrap().pending = Some(PendingRoute {
            move_id: MoveId(9),
            lasthop: Hop::Broker(BrokerId(3)),
        });
        assert_eq!(prt.pending_for(MoveId(9)), vec![s1.id]);
        assert!(prt.pending_for(MoveId(8)).is_empty());
    }
}
