//! Binary wire encoding ([`Wire`]) for the routing-layer messages.
//!
//! Tag bytes are part of the wire contract (DESIGN.md §13) and must
//! never be renumbered: 0 Advertise, 1 Unadvertise, 2 Subscribe,
//! 3 Unsubscribe, 4 Publish, 5 RepairAdv, 6 RepairSub.

use transmob_pubsub::wire::{Wire, WireError, WireReader, WireWriter};
use transmob_pubsub::{AdvId, Advertisement, PublicationMsg, SubId, Subscription};

use crate::messages::PubSubMsg;

impl Wire for PubSubMsg {
    fn enc(&self, w: &mut WireWriter<'_>) {
        match self {
            PubSubMsg::Advertise(a) => {
                w.byte(0);
                a.enc(w);
            }
            PubSubMsg::Unadvertise(id) => {
                w.byte(1);
                id.enc(w);
            }
            PubSubMsg::Subscribe(s) => {
                w.byte(2);
                s.enc(w);
            }
            PubSubMsg::Unsubscribe(id) => {
                w.byte(3);
                id.enc(w);
            }
            PubSubMsg::Publish(p) => {
                w.byte(4);
                p.enc(w);
            }
            PubSubMsg::RepairAdv(a) => {
                w.byte(5);
                a.enc(w);
            }
            PubSubMsg::RepairSub(s) => {
                w.byte(6);
                s.enc(w);
            }
        }
    }

    fn dec(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.byte()? {
            0 => Ok(PubSubMsg::Advertise(Advertisement::dec(r)?)),
            1 => Ok(PubSubMsg::Unadvertise(AdvId::dec(r)?)),
            2 => Ok(PubSubMsg::Subscribe(Subscription::dec(r)?)),
            3 => Ok(PubSubMsg::Unsubscribe(SubId::dec(r)?)),
            4 => Ok(PubSubMsg::Publish(PublicationMsg::dec(r)?)),
            5 => Ok(PubSubMsg::RepairAdv(Advertisement::dec(r)?)),
            6 => Ok(PubSubMsg::RepairSub(Subscription::dec(r)?)),
            t => Err(WireError(format!("unknown pubsub tag {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transmob_pubsub::wire::{decode_one, encode_one};
    use transmob_pubsub::{ClientId, Filter, PubId, Publication};

    #[test]
    fn pubsub_msgs_round_trip() {
        let msgs = vec![
            PubSubMsg::Advertise(Advertisement::new(
                AdvId::new(ClientId(1), 0),
                Filter::builder().ge("price", 0).build(),
            )),
            PubSubMsg::Unadvertise(AdvId::new(ClientId(1), 0)),
            PubSubMsg::Subscribe(Subscription::new(
                SubId::new(ClientId(2), 5),
                Filter::builder()
                    .eq("symbol", "IBM")
                    .lt("price", 100)
                    .build(),
            )),
            PubSubMsg::Unsubscribe(SubId::new(ClientId(2), 5)),
            PubSubMsg::Publish(PublicationMsg::new(
                PubId(77),
                ClientId(3),
                Publication::new().with("symbol", "IBM").with("price", 88),
            )),
            PubSubMsg::RepairAdv(Advertisement::new(
                AdvId::new(ClientId(4), 1),
                Filter::builder().ge("price", 10).build(),
            )),
            PubSubMsg::RepairSub(Subscription::new(
                SubId::new(ClientId(5), 2),
                Filter::builder().eq("symbol", "TSX").build(),
            )),
        ];
        for m in &msgs {
            let bytes = encode_one(m);
            let back: PubSubMsg = decode_one(&bytes).expect("decode");
            assert_eq!(&back, m);
        }
        // And as a vector sharing one string table.
        let bytes = encode_one(&msgs);
        let back: Vec<PubSubMsg> = decode_one(&bytes).expect("decode vec");
        assert_eq!(back, msgs);
    }
}
