//! Wire messages of the pub/sub routing layer and the outputs a broker
//! state machine produces.

use std::fmt;

use serde::{Deserialize, Serialize};
use transmob_pubsub::{
    AdvId, Advertisement, BrokerId, ClientId, PublicationMsg, SubId, Subscription,
};

/// Where a message came from / where a routing-table entry points.
///
/// `lasthop` fields in the routing tables are `Hop`s: a neighbouring
/// broker, or a client attached to this broker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Hop {
    /// A neighbouring broker.
    Broker(BrokerId),
    /// A locally attached client.
    Client(ClientId),
}

impl Hop {
    /// The broker id, if this hop is a broker.
    pub fn as_broker(self) -> Option<BrokerId> {
        match self {
            Hop::Broker(b) => Some(b),
            Hop::Client(_) => None,
        }
    }

    /// The client id, if this hop is a client.
    pub fn as_client(self) -> Option<ClientId> {
        match self {
            Hop::Client(c) => Some(c),
            Hop::Broker(_) => None,
        }
    }
}

impl fmt::Display for Hop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Hop::Broker(b) => write!(f, "{b}"),
            Hop::Client(c) => write!(f, "{c}"),
        }
    }
}

impl From<BrokerId> for Hop {
    fn from(b: BrokerId) -> Self {
        Hop::Broker(b)
    }
}

impl From<ClientId> for Hop {
    fn from(c: ClientId) -> Self {
        Hop::Client(c)
    }
}

/// A routing-layer message exchanged between brokers (and between a
/// client and its access broker).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PubSubMsg {
    /// Announce intent to publish matching publications.
    Advertise(Advertisement),
    /// Withdraw an advertisement.
    Unadvertise(AdvId),
    /// Register interest.
    Subscribe(Subscription),
    /// Withdraw a subscription.
    Unsubscribe(SubId),
    /// A publication travelling toward interested subscribers.
    Publish(PublicationMsg),
    /// An advertisement re-propagated across a new overlay edge during
    /// repair after a broker death. Semantically an [`PubSubMsg::Advertise`]
    /// (idempotent insert-or-adopt-lasthop), tagged separately so repair
    /// traffic is identifiable end-to-end in metrics and traces.
    RepairAdv(Advertisement),
    /// A subscription re-propagated during repair (pulled toward a
    /// [`PubSubMsg::RepairAdv`]); semantically a [`PubSubMsg::Subscribe`].
    RepairSub(Subscription),
}

impl PubSubMsg {
    /// Coarse message kind, for metrics.
    pub fn kind(&self) -> MsgKind {
        match self {
            PubSubMsg::Advertise(_) => MsgKind::Advertise,
            PubSubMsg::Unadvertise(_) => MsgKind::Unadvertise,
            PubSubMsg::Subscribe(_) => MsgKind::Subscribe,
            PubSubMsg::Unsubscribe(_) => MsgKind::Unsubscribe,
            PubSubMsg::Publish(_) => MsgKind::Publish,
            PubSubMsg::RepairAdv(_) => MsgKind::RepairAdv,
            PubSubMsg::RepairSub(_) => MsgKind::RepairSub,
        }
    }
}

impl fmt::Display for PubSubMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PubSubMsg::Advertise(a) => write!(f, "adv {a}"),
            PubSubMsg::Unadvertise(id) => write!(f, "unadv {id}"),
            PubSubMsg::Subscribe(s) => write!(f, "sub {s}"),
            PubSubMsg::Unsubscribe(id) => write!(f, "unsub {id}"),
            PubSubMsg::Publish(p) => write!(f, "pub {p}"),
            PubSubMsg::RepairAdv(a) => write!(f, "repair-adv {a}"),
            PubSubMsg::RepairSub(s) => write!(f, "repair-sub {s}"),
        }
    }
}

/// Coarse kind of a routing-layer message, used as a metrics key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MsgKind {
    /// Advertisement.
    Advertise,
    /// Unadvertisement.
    Unadvertise,
    /// Subscription.
    Subscribe,
    /// Unsubscription.
    Unsubscribe,
    /// Publication.
    Publish,
    /// Movement-protocol control message (tagged by higher layers).
    MoveCtl,
    /// Advertisement re-propagated during overlay repair.
    RepairAdv,
    /// Subscription re-propagated during overlay repair.
    RepairSub,
}

impl fmt::Display for MsgKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MsgKind::Advertise => "advertise",
            MsgKind::Unadvertise => "unadvertise",
            MsgKind::Subscribe => "subscribe",
            MsgKind::Unsubscribe => "unsubscribe",
            MsgKind::Publish => "publish",
            MsgKind::MoveCtl => "move-ctl",
            MsgKind::RepairAdv => "repair-adv",
            MsgKind::RepairSub => "repair-sub",
        };
        f.write_str(s)
    }
}

/// Effects produced by [`crate::BrokerCore`] in response to one input
/// message. The hosting driver (simulator or threaded runtime) turns
/// these into real sends and deliveries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BrokerOutput {
    /// Send a routing-layer message to a neighbouring broker.
    ToBroker(BrokerId, PubSubMsg),
    /// Deliver a publication to a locally attached client.
    Deliver(ClientId, PublicationMsg),
}

impl BrokerOutput {
    /// The destination broker, if this output is a broker send.
    pub fn broker_dest(&self) -> Option<BrokerId> {
        match self {
            BrokerOutput::ToBroker(b, _) => Some(*b),
            BrokerOutput::Deliver(..) => None,
        }
    }
}

/// The effects of one [`crate::BrokerCore::handle_batch`] call.
///
/// Internally this is the flat, ordered effect list the broker core
/// emitted — the order is authoritative (per-destination send order is
/// the per-link FIFO the consistency argument relies on) and
/// [`OutputBatch::into_flat`] recovers it exactly. The grouped views
/// ([`OutputBatch::per_neighbor`], [`OutputBatch::deliveries`]) let a
/// driver emit one coalesced frame per destination; grouping by
/// destination preserves the relative order of effects sharing a
/// destination, which is the only order the FIFO invariant constrains.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OutputBatch {
    outputs: Vec<BrokerOutput>,
}

impl OutputBatch {
    /// An empty batch.
    pub fn new() -> Self {
        OutputBatch::default()
    }

    /// Wraps an already-flat effect list.
    pub fn from_flat(outputs: Vec<BrokerOutput>) -> Self {
        OutputBatch { outputs }
    }

    /// Appends one effect.
    pub fn push(&mut self, output: BrokerOutput) {
        self.outputs.push(output);
    }

    /// Appends a sequence of effects in order.
    pub fn extend(&mut self, outputs: impl IntoIterator<Item = BrokerOutput>) {
        self.outputs.extend(outputs);
    }

    /// Number of effects.
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }

    /// Iterates the effects in emission order.
    pub fn iter(&self) -> impl Iterator<Item = &BrokerOutput> {
        self.outputs.iter()
    }

    /// The broker sends grouped by destination neighbour, each group
    /// in emission order; destinations come out in id order.
    pub fn per_neighbor(&self) -> std::collections::BTreeMap<BrokerId, Vec<&PubSubMsg>> {
        let mut grouped: std::collections::BTreeMap<BrokerId, Vec<&PubSubMsg>> =
            std::collections::BTreeMap::new();
        for o in &self.outputs {
            if let BrokerOutput::ToBroker(n, msg) = o {
                grouped.entry(*n).or_default().push(msg);
            }
        }
        grouped
    }

    /// The client deliveries, in emission order.
    pub fn deliveries(&self) -> Vec<(ClientId, &PublicationMsg)> {
        self.outputs
            .iter()
            .filter_map(|o| match o {
                BrokerOutput::Deliver(c, p) => Some((*c, p)),
                BrokerOutput::ToBroker(..) => None,
            })
            .collect()
    }

    /// The flat effect list in emission order (the exact sequence a
    /// fold of single-message `handle` calls would have produced).
    pub fn into_flat(self) -> Vec<BrokerOutput> {
        self.outputs
    }
}

impl IntoIterator for OutputBatch {
    type Item = BrokerOutput;
    type IntoIter = std::vec::IntoIter<BrokerOutput>;

    fn into_iter(self) -> Self::IntoIter {
        self.outputs.into_iter()
    }
}

impl From<Vec<BrokerOutput>> for OutputBatch {
    fn from(outputs: Vec<BrokerOutput>) -> Self {
        OutputBatch::from_flat(outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transmob_pubsub::Filter;

    #[test]
    fn hop_conversions() {
        let h: Hop = BrokerId(2).into();
        assert_eq!(h.as_broker(), Some(BrokerId(2)));
        assert_eq!(h.as_client(), None);
        let c: Hop = ClientId(7).into();
        assert_eq!(c.as_client(), Some(ClientId(7)));
        assert_eq!(c.to_string(), "C7");
    }

    #[test]
    fn msg_kinds() {
        let s = Subscription::new(
            SubId::new(ClientId(1), 0),
            Filter::builder().any("x").build(),
        );
        assert_eq!(PubSubMsg::Subscribe(s).kind(), MsgKind::Subscribe);
        assert_eq!(
            PubSubMsg::Unsubscribe(SubId::new(ClientId(1), 0)).kind(),
            MsgKind::Unsubscribe
        );
    }

    #[test]
    fn output_batch_groups_by_destination_preserving_order() {
        use transmob_pubsub::{PubId, Publication};
        let pmsg = |i: u64| {
            PublicationMsg::new(
                PubId(i),
                ClientId(1),
                Publication::new().with("x", i as i64),
            )
        };
        let flat = vec![
            BrokerOutput::ToBroker(BrokerId(2), PubSubMsg::Publish(pmsg(1))),
            BrokerOutput::Deliver(ClientId(9), pmsg(1)),
            BrokerOutput::ToBroker(BrokerId(3), PubSubMsg::Publish(pmsg(2))),
            BrokerOutput::ToBroker(BrokerId(2), PubSubMsg::Publish(pmsg(3))),
            BrokerOutput::Deliver(ClientId(8), pmsg(3)),
        ];
        let batch = OutputBatch::from_flat(flat.clone());
        assert_eq!(batch.len(), 5);
        let grouped = batch.per_neighbor();
        assert_eq!(grouped.len(), 2);
        assert_eq!(
            grouped[&BrokerId(2)],
            vec![&PubSubMsg::Publish(pmsg(1)), &PubSubMsg::Publish(pmsg(3))]
        );
        assert_eq!(grouped[&BrokerId(3)], vec![&PubSubMsg::Publish(pmsg(2))]);
        let deliveries = batch.deliveries();
        assert_eq!(deliveries.len(), 2);
        assert_eq!(deliveries[0].0, ClientId(9));
        assert_eq!(deliveries[1].0, ClientId(8));
        assert_eq!(batch.into_flat(), flat);
    }

    #[test]
    fn hops_order_deterministically() {
        let mut hops = vec![
            Hop::Client(ClientId(1)),
            Hop::Broker(BrokerId(5)),
            Hop::Broker(BrokerId(1)),
        ];
        hops.sort();
        assert_eq!(
            hops,
            vec![
                Hop::Broker(BrokerId(1)),
                Hop::Broker(BrokerId(5)),
                Hop::Client(ClientId(1)),
            ]
        );
    }
}
