//! A TCP transport for the broker overlay: every overlay link is a
//! real socket carrying newline-delimited JSON frames of the protocol
//! [`Message`]s — the same bytes a multi-host deployment would put on
//! the wire. Brokers still run as threads of this process (the paper's
//! cluster ran one broker per machine; the transport, serialization
//! and framing are what this module makes real), and clients attach
//! through in-process handles exactly as with [`crate::Network`].
//!
//! ```no_run
//! use transmob_runtime::tcp::TcpNetwork;
//! use transmob_broker::Topology;
//! use transmob_core::MobileBrokerConfig;
//!
//! let net = TcpNetwork::start(Topology::chain(3), MobileBrokerConfig::reconfig())
//!     .expect("bind overlay sockets");
//! // ... create clients, publish, move — same API as Network ...
//! net.shutdown();
//! ```

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use transmob_broker::{Hop, Topology};
use transmob_core::{ClientOp, Message, MobileBroker, MobileBrokerConfig, Output};
use transmob_pubsub::{BrokerId, ClientId, Filter, Publication, PublicationMsg};

use crate::MoveOutcome;

/// One wire frame: the sending broker plus the protocol message.
#[derive(Debug, Serialize, Deserialize)]
struct Frame {
    from: u32,
    msg: Message,
}

enum Input {
    FromBroker(BrokerId, Message),
    FromClient(ClientId, ClientOp),
    CreateClient(ClientId),
    Shutdown,
}

#[derive(Debug, Default)]
struct Registry {
    homes: BTreeMap<ClientId, BrokerId>,
    deliveries: BTreeMap<ClientId, Sender<PublicationMsg>>,
    move_events: BTreeMap<ClientId, Sender<MoveOutcome>>,
}

struct Shared {
    inputs: BTreeMap<BrokerId, Sender<Input>>,
    registry: RwLock<Registry>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Shared({} brokers)", self.inputs.len())
    }
}

type LinkWriter = Arc<Mutex<BufWriter<TcpStream>>>;

/// A broker overlay whose links are real TCP sockets.
pub struct TcpNetwork {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// One handle per socket endpoint, shut down explicitly so reader
    /// threads observe EOF and can be joined.
    sockets: Vec<TcpStream>,
}

impl std::fmt::Debug for TcpNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TcpNetwork({} broker threads)", self.handles.len())
    }
}

impl TcpNetwork {
    /// Binds one loopback listener per broker on an ephemeral port,
    /// connects every overlay edge, and starts the broker threads.
    ///
    /// # Errors
    ///
    /// Propagates socket bind/connect and thread-spawn errors; any
    /// threads already started are shut down and joined before the
    /// error is returned.
    pub fn start(topology: Topology, config: MobileBrokerConfig) -> io::Result<TcpNetwork> {
        Self::start_with(topology, config, |_| "127.0.0.1:0".to_string())
    }

    /// Like [`TcpNetwork::start`], but binds each broker's listener at
    /// the address chosen by `bind_addr` (e.g. fixed ports for a
    /// firewall-pinned deployment). Port `0` picks an ephemeral port.
    ///
    /// # Errors
    ///
    /// Propagates socket bind/connect and thread-spawn errors — a
    /// colliding or unbindable address reports `AddrInUse` (or the
    /// underlying error) instead of aborting the process.
    pub fn start_with(
        topology: Topology,
        config: MobileBrokerConfig,
        mut bind_addr: impl FnMut(BrokerId) -> String,
    ) -> io::Result<TcpNetwork> {
        let topology = Arc::new(topology);
        // Phase 1: bind all listeners.
        let mut listeners: BTreeMap<BrokerId, TcpListener> = BTreeMap::new();
        let mut addrs: BTreeMap<BrokerId, std::net::SocketAddr> = BTreeMap::new();
        for b in topology.brokers() {
            let addr = bind_addr(b);
            let l = TcpListener::bind(&addr).map_err(|e| {
                io::Error::new(e.kind(), format!("bind broker {b} listener at {addr}: {e}"))
            })?;
            addrs.insert(b, l.local_addr()?);
            listeners.insert(b, l);
        }
        // Phase 2: connect each edge, lower id dialing the higher.
        // Handshake: the dialer sends its broker id as the first line.
        let mut inputs: BTreeMap<BrokerId, Sender<Input>> = BTreeMap::new();
        let mut input_rx: BTreeMap<BrokerId, Receiver<Input>> = BTreeMap::new();
        for b in topology.brokers() {
            let (tx, rx) = unbounded();
            inputs.insert(b, tx);
            input_rx.insert(b, rx);
        }
        let shared = Arc::new(Shared {
            inputs,
            registry: RwLock::new(Registry::default()),
        });
        let mut links: BTreeMap<BrokerId, BTreeMap<BrokerId, LinkWriter>> = BTreeMap::new();
        let mut reader_handles = Vec::new();
        let mut sockets: Vec<TcpStream> = Vec::new();
        for (a, b) in topology.edges() {
            // a < b by construction of `edges()`.
            let dial = TcpStream::connect(addrs[&b])?;
            {
                let mut w = BufWriter::new(dial.try_clone()?);
                writeln!(w, "{}", a.0)?;
                w.flush()?;
            }
            let (accepted, _) = listeners[&b].accept()?;
            {
                // Consume the handshake line.
                let mut r = BufReader::new(accepted.try_clone()?);
                let mut line = String::new();
                r.read_line(&mut line)?;
                let peer: u32 = line
                    .trim()
                    .parse()
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e}")))?;
                if peer != a.0 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "handshake id mismatch",
                    ));
                }
            }
            // a's side: writes on `dial`, reads frames from b.
            links
                .entry(a)
                .or_default()
                .insert(b, Arc::new(Mutex::new(BufWriter::new(dial.try_clone()?))));
            sockets.push(dial.try_clone()?);
            reader_handles.push(spawn_reader(a, dial, Arc::clone(&shared))?);
            // b's side: writes on `accepted`, reads frames from a.
            links.entry(b).or_default().insert(
                a,
                Arc::new(Mutex::new(BufWriter::new(accepted.try_clone()?))),
            );
            sockets.push(accepted.try_clone()?);
            reader_handles.push(spawn_reader(b, accepted, Arc::clone(&shared))?);
        }
        drop(listeners);
        // Phase 3: broker threads. From here on `net`'s Drop handles
        // cleanup (shutdown + join of everything started so far) if a
        // later spawn fails.
        let mut net = TcpNetwork {
            shared,
            handles: reader_handles,
            sockets,
        };
        for b in topology.brokers() {
            let Some(rx) = input_rx.remove(&b) else {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("no input channel for broker {b}"),
                ));
            };
            let writers = links.remove(&b).unwrap_or_default();
            let shared2 = Arc::clone(&net.shared);
            let topology2 = Arc::clone(&topology);
            let config2 = config.clone();
            let handle = std::thread::Builder::new()
                .name(format!("tcp-broker-{b}"))
                .spawn(move || tcp_broker_main(b, topology2, config2, rx, writers, shared2))
                .map_err(|e| io::Error::new(e.kind(), format!("spawn broker thread {b}: {e}")))?;
            net.handles.push(handle);
        }
        Ok(net)
    }

    /// Creates (attaches and starts) a client at `broker`, returning
    /// its handle.
    ///
    /// # Panics
    ///
    /// Panics if the client id is already in use.
    pub fn create_client(&self, broker: BrokerId, id: ClientId) -> TcpClient {
        let (dtx, drx) = unbounded();
        let (mtx, mrx) = unbounded();
        {
            let mut reg = self.shared.registry.write();
            assert!(
                !reg.homes.contains_key(&id),
                "client id {id} already in use"
            );
            reg.homes.insert(id, broker);
            reg.deliveries.insert(id, dtx);
            reg.move_events.insert(id, mtx);
        }
        let _ = self.shared.inputs[&broker].send(Input::CreateClient(id));
        TcpClient {
            id,
            shared: Arc::clone(&self.shared),
            deliveries: drx,
            moves: mrx,
        }
    }

    /// The broker currently hosting `client`.
    pub fn home_of(&self, client: ClientId) -> Option<BrokerId> {
        self.shared.registry.read().homes.get(&client).copied()
    }

    /// Stops all broker threads, closes every socket so reader threads
    /// observe EOF, and waits for them all.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        for tx in self.shared.inputs.values() {
            let _ = tx.send(Input::Shutdown);
        }
        for s in self.sockets.drain(..) {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for TcpNetwork {
    fn drop(&mut self) {
        self.stop();
    }
}

/// A client handle on a [`TcpNetwork`] (same surface as
/// [`crate::Client`]).
#[derive(Debug)]
pub struct TcpClient {
    id: ClientId,
    shared: Arc<Shared>,
    deliveries: Receiver<PublicationMsg>,
    moves: Receiver<MoveOutcome>,
}

impl TcpClient {
    /// The client id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    fn send_op(&self, op: ClientOp) {
        let home = self
            .shared
            .registry
            .read()
            .homes
            .get(&self.id)
            .copied()
            .expect("client registered");
        let _ = self.shared.inputs[&home].send(Input::FromClient(self.id, op));
    }

    /// Issues a subscription.
    pub fn subscribe(&self, filter: Filter) {
        self.send_op(ClientOp::Subscribe(filter));
    }

    /// Issues an advertisement.
    pub fn advertise(&self, filter: Filter) {
        self.send_op(ClientOp::Advertise(filter));
    }

    /// Publishes a publication.
    pub fn publish(&self, content: Publication) {
        self.send_op(ClientOp::Publish(content));
    }

    /// Requests a movement and waits up to `timeout` for it to finish.
    pub fn move_to(
        &self,
        target: BrokerId,
        protocol: transmob_core::ProtocolKind,
        timeout: Duration,
    ) -> bool {
        self.send_op(ClientOp::MoveTo(target, protocol));
        matches!(
            self.moves.recv_timeout(timeout),
            Ok(MoveOutcome {
                committed: true,
                ..
            })
        )
    }

    /// Receives the next notification, waiting up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<PublicationMsg> {
        self.deliveries.recv_timeout(timeout).ok()
    }

    /// Drains all currently queued notifications.
    pub fn drain(&self) -> Vec<PublicationMsg> {
        let mut out = Vec::new();
        while let Ok(p) = self.deliveries.try_recv() {
            out.push(p);
        }
        out
    }
}

/// Reads JSON frames from one socket and feeds them to the owning
/// broker's input channel. Exits on EOF or socket error.
fn spawn_reader(
    owner: BrokerId,
    stream: TcpStream,
    shared: Arc<Shared>,
) -> io::Result<JoinHandle<()>> {
    std::thread::Builder::new()
        .name(format!("tcp-reader-{owner}"))
        .spawn(move || {
            let reader = BufReader::new(stream);
            for line in reader.lines() {
                let Ok(line) = line else { return };
                let Ok(frame) = serde_json::from_str::<Frame>(&line) else {
                    return; // corrupt peer: drop the link
                };
                if shared.inputs[&owner]
                    .send(Input::FromBroker(BrokerId(frame.from), frame.msg))
                    .is_err()
                {
                    return;
                }
            }
        })
        .map_err(|e| io::Error::new(e.kind(), format!("spawn reader thread for {owner}: {e}")))
}

fn tcp_broker_main(
    id: BrokerId,
    topology: Arc<Topology>,
    config: MobileBrokerConfig,
    rx: Receiver<Input>,
    writers: BTreeMap<BrokerId, LinkWriter>,
    shared: Arc<Shared>,
) {
    let mut broker = MobileBroker::new(id, topology, config);
    // Timers are unnecessary for the blocking-variant tests this
    // transport targets; armed timers are ignored (documented).
    loop {
        let input = match rx.recv() {
            Ok(i) => i,
            Err(_) => return,
        };
        let outs = match input {
            Input::Shutdown => return,
            Input::CreateClient(c) => {
                broker.create_client(c);
                continue;
            }
            Input::FromClient(c, op) => {
                if broker.client(c).is_none() {
                    let home = shared.registry.read().homes.get(&c).copied();
                    if let Some(h) = home {
                        if h != id {
                            let _ = shared.inputs[&h].send(Input::FromClient(c, op));
                        }
                    }
                    continue;
                }
                broker.client_op(c, op)
            }
            Input::FromBroker(from, msg) => broker.handle(Hop::Broker(from), msg),
        };
        for o in outs {
            match o {
                Output::Send { to, msg } => {
                    if let Some(w) = writers.get(&to) {
                        let mut w = w.lock();
                        let frame = Frame { from: id.0, msg };
                        if let Ok(line) = serde_json::to_string(&frame) {
                            let _ = writeln!(w, "{line}");
                            let _ = w.flush();
                        }
                    }
                }
                Output::DeliverToApp {
                    client,
                    publication,
                } => {
                    let reg = shared.registry.read();
                    if let Some(tx) = reg.deliveries.get(&client) {
                        let _ = tx.send(publication);
                    }
                }
                Output::MoveFinished {
                    m,
                    client,
                    committed,
                } => {
                    let reg = shared.registry.read();
                    if let Some(tx) = reg.move_events.get(&client) {
                        let _ = tx.send(MoveOutcome { m, committed });
                    }
                }
                Output::ClientArrived { client, .. } => {
                    shared.registry.write().homes.insert(client, id);
                }
                Output::SetTimer { .. } | Output::CancelTimer { .. } => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transmob_core::ProtocolKind;

    fn b(i: u32) -> BrokerId {
        BrokerId(i)
    }
    fn c(i: u64) -> ClientId {
        ClientId(i)
    }
    fn range(lo: i64, hi: i64) -> Filter {
        Filter::builder().ge("x", lo).le("x", hi).build()
    }

    #[test]
    fn delivery_over_real_sockets() {
        let net =
            TcpNetwork::start(Topology::chain(4), MobileBrokerConfig::reconfig()).expect("sockets");
        let p = net.create_client(b(1), c(1));
        let s = net.create_client(b(4), c(2));
        p.advertise(range(0, 100));
        s.subscribe(range(0, 100));
        std::thread::sleep(Duration::from_millis(100));
        p.publish(Publication::new().with("x", 7));
        let got = s.recv_timeout(Duration::from_secs(3)).expect("delivery");
        assert_eq!(got.publisher, c(1));
        net.shutdown();
    }

    #[test]
    fn transactional_move_over_real_sockets() {
        let net =
            TcpNetwork::start(Topology::chain(5), MobileBrokerConfig::reconfig()).expect("sockets");
        let p = net.create_client(b(1), c(1));
        let s = net.create_client(b(5), c(2));
        p.advertise(range(0, 100));
        s.subscribe(range(0, 100));
        std::thread::sleep(Duration::from_millis(100));
        assert!(s.move_to(b(2), ProtocolKind::Reconfig, Duration::from_secs(10)));
        assert_eq!(net.home_of(c(2)), Some(b(2)));
        p.publish(Publication::new().with("x", 9));
        assert!(s.recv_timeout(Duration::from_secs(3)).is_some());
        // Exactly once even over the wire.
        std::thread::sleep(Duration::from_millis(100));
        assert!(s.drain().is_empty());
        net.shutdown();
    }

    #[test]
    fn covering_protocol_over_real_sockets() {
        let net =
            TcpNetwork::start(Topology::chain(4), MobileBrokerConfig::covering()).expect("sockets");
        let p = net.create_client(b(1), c(1));
        let s = net.create_client(b(4), c(2));
        p.advertise(range(0, 100));
        s.subscribe(range(0, 100));
        std::thread::sleep(Duration::from_millis(100));
        assert!(s.move_to(b(2), ProtocolKind::Covering, Duration::from_secs(10)));
        p.publish(Publication::new().with("x", 3));
        assert!(s.recv_timeout(Duration::from_secs(3)).is_some());
        net.shutdown();
    }

    #[test]
    fn colliding_port_reports_error_instead_of_aborting() {
        // Occupy a loopback port, then ask the overlay to bind every
        // broker on it: construction must surface the bind error (it
        // used to abort the process via `expect`).
        let occupied = TcpListener::bind("127.0.0.1:0").expect("bind blocker");
        let addr = occupied.local_addr().expect("blocker addr").to_string();
        let err =
            TcpNetwork::start_with(Topology::chain(3), MobileBrokerConfig::reconfig(), |_| {
                addr.clone()
            })
            .expect_err("colliding bind must fail");
        assert_eq!(err.kind(), io::ErrorKind::AddrInUse, "{err}");
        assert!(
            err.to_string().contains("bind broker"),
            "error lacks broker context: {err}"
        );
    }

    #[test]
    fn late_collision_cleans_up_earlier_listeners() {
        // First broker binds an ephemeral port, a later one collides:
        // the partial construction must tear down without hanging and
        // a subsequent start on fresh ports must succeed.
        let occupied = TcpListener::bind("127.0.0.1:0").expect("bind blocker");
        let addr = occupied.local_addr().expect("blocker addr").to_string();
        let err = TcpNetwork::start_with(Topology::chain(3), MobileBrokerConfig::reconfig(), |b| {
            if b == BrokerId(2) {
                addr.clone()
            } else {
                "127.0.0.1:0".to_string()
            }
        })
        .expect_err("colliding bind must fail");
        assert_eq!(err.kind(), io::ErrorKind::AddrInUse, "{err}");
        let net = TcpNetwork::start(Topology::chain(3), MobileBrokerConfig::reconfig())
            .expect("fresh ephemeral start succeeds after failed attempt");
        net.shutdown();
    }

    #[test]
    fn drop_is_clean() {
        let net =
            TcpNetwork::start(Topology::chain(2), MobileBrokerConfig::reconfig()).expect("sockets");
        let _c = net.create_client(b(1), c(1));
        drop(net); // must join without hanging
    }
}
