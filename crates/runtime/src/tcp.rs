//! A TCP transport for the broker overlay: every overlay link is a
//! real socket carrying length-prefixed binary frames of the protocol
//! [`Message`]s (newline-delimited JSON in the debug/interop mode —
//! see [`WireMode`] and DESIGN.md §13) — the same bytes a multi-host
//! deployment would put on the wire. Brokers still run as threads of
//! this process (the paper's cluster ran one broker per machine; the
//! transport, serialization and framing are what this module makes
//! real), and clients attach through in-process handles exactly as
//! with [`crate::Network`].
//!
//! Frames written during one `OutputBatch` are buffered and flushed
//! with a single syscall per touched link ([`TcpFlush`] tracks the
//! touched set), so the coalescer's batching survives all the way to
//! the socket. Per-link [`LinkStats`] count frames, flushes, decode
//! failures, serialize failures and publication drops, and a link
//! taken down records *why* ([`TcpNetwork::link_stats`]).
//!
//! # Failure detection and crash recovery
//!
//! Each broker drives a [`DurabilityLog`] (write-ahead command log +
//! periodic checkpoint) and sends heartbeat frames over every link, so
//! the overlay survives a broker process dying:
//!
//! - a peer disconnect (socket EOF, write error, or a failed
//!   heartbeat) marks the link **down**; protocol messages queue at
//!   the surviving endpoint instead of being dropped;
//! - the link's dialer side redials with capped exponential backoff
//!   ([`REDIAL_BASE`] doubling up to [`REDIAL_CAP`]) until the peer
//!   accepts again, then flushes the queued frames in order;
//! - [`TcpNetwork::kill_broker`] crashes one broker (thread torn down,
//!   sockets severed, undelivered inputs lost) and
//!   [`TcpNetwork::restart_broker`] resumes it from its durability
//!   log, re-arming the timers of any in-flight movement — so a
//!   movement that was mid-flight when the broker died still commits
//!   (or aborts cleanly via its protocol timeout) after the restart.
//!
//! ```no_run
//! use transmob_runtime::tcp::TcpNetwork;
//! use transmob_broker::Topology;
//! use transmob_core::MobileBrokerConfig;
//!
//! let net = TcpNetwork::builder()
//!     .overlay(Topology::chain(3))
//!     .options(MobileBrokerConfig::reconfig())
//!     .start()
//!     .expect("bind overlay sockets");
//! // ... create clients, publish, move — same API as Network ...
//! net.shutdown();
//! ```

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use transmob_broker::{Hop, OverlayBuilder, PrematchedRoutes, PubSubMsg, Topology};
use transmob_core::transport::{flush_outputs, Transport};
use transmob_core::{
    ClientOp, DurabilityLog, MemoryLog, Message, MobileBroker, MobileBrokerConfig, NetworkOptions,
    Output, TimerToken,
};
use transmob_pubsub::{BrokerId, ClientId, Filter, Publication, PublicationMsg};

use crate::codec::{Frame, FrameDecoder, FrameEncoder, ReadError, WireMode};
use crate::MoveOutcome;

/// Default heartbeat period: each broker pings every live link this
/// often ([`TcpOptions::heartbeat_interval`]).
pub const HEARTBEAT_INTERVAL: Duration = Duration::from_millis(50);
/// Default first redial delay after a link drops
/// ([`TcpOptions::redial_base`]).
pub const REDIAL_BASE: Duration = Duration::from_millis(25);
/// Default redial backoff ceiling ([`TcpOptions::redial_cap`]).
pub const REDIAL_CAP: Duration = Duration::from_millis(400);
/// Default silence threshold for broker-death suspicion
/// ([`TcpOptions::failure_timeout`]; only consulted when
/// [`TcpOptions::suspicion_after`] is set).
pub const FAILURE_TIMEOUT: Duration = Duration::from_secs(2);
/// Handshake read deadline (a half-open peer must not wedge a dialer).
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(2);

/// Default high-water mark for a down link's outbound queue, in
/// messages. Generous enough that no protocol conversation ever nears
/// it; small enough that a long partition under publication flood
/// cannot grow memory without bound.
pub const DEFAULT_DOWN_QUEUE_HWM: usize = 8192;

/// Transport tuning for one [`TcpNetwork`].
#[derive(Debug, Clone)]
pub struct TcpOptions {
    /// Frame codec for every link of this overlay (all endpoints share
    /// it; the handshake refuses mode mismatches).
    pub wire: WireMode,
    /// High-water mark for each down link's outbound queue. On
    /// overflow the oldest queued *publications* are dropped (and
    /// counted in [`LinkStats::dropped_publications`]); subscription
    /// control and movement-protocol frames are never dropped, even if
    /// that means exceeding the mark.
    pub down_queue_hwm: usize,
    /// Heartbeat period (default [`HEARTBEAT_INTERVAL`]). The probe
    /// doubles as write-path failure detection, so this bounds how
    /// long a silent peer death goes unnoticed by the sender side.
    pub heartbeat_interval: Duration,
    /// First redial delay after a link drops (default [`REDIAL_BASE`]).
    pub redial_base: Duration,
    /// Redial backoff ceiling (default [`REDIAL_CAP`]). Jitter never
    /// pushes a delay past it.
    pub redial_cap: Duration,
    /// How long a down link's inbound silence lasts before the
    /// surviving endpoint *suspects the peer broker is permanently
    /// dead* (default [`FAILURE_TIMEOUT`]). Only consulted when
    /// [`TcpOptions::suspicion_after`] is set; it is the acceptor
    /// side's detector — the dialer side detects by redial exhaustion.
    pub failure_timeout: Duration,
    /// Consecutive failed redials after which the dialer promotes the
    /// link failure to broker-death suspicion and triggers the overlay
    /// self-repair (`MobileBroker::handle_broker_death`). `None` (the
    /// default) disables suspicion entirely: links queue and redial
    /// forever, which is the right model when every outage is a
    /// crash/restart rather than churn.
    pub suspicion_after: Option<u32>,
}

impl Default for TcpOptions {
    /// Binary framing (JSON when `TRANSMOB_WIRE=json`, the debug/CI
    /// differential mode), [`DEFAULT_DOWN_QUEUE_HWM`], today's timing
    /// constants, and suspicion disabled.
    fn default() -> Self {
        TcpOptions {
            wire: WireMode::from_env(),
            down_queue_hwm: DEFAULT_DOWN_QUEUE_HWM,
            heartbeat_interval: HEARTBEAT_INTERVAL,
            redial_base: REDIAL_BASE,
            redial_cap: REDIAL_CAP,
            failure_timeout: FAILURE_TIMEOUT,
            suspicion_after: None,
        }
    }
}

/// The `attempt`-th redial delay (0-based): capped exponential backoff
/// with deterministic *equal jitter* — the envelope doubles from
/// `base` up to `cap`, and the delay is drawn uniformly from the upper
/// half `[envelope/2, envelope]` of it, so concurrently dropped links
/// (a broker death severs every link at once) spread their dial storms
/// instead of knocking in lockstep.
///
/// Pure and seed-deterministic: the same `(base, cap, attempt, seed)`
/// always yields the same delay, which is what lets the backoff
/// schedule be regression-tested as a value.
pub fn redial_delay(base: Duration, cap: Duration, attempt: u32, seed: u64) -> Duration {
    let envelope = base
        .saturating_mul(1u32 << attempt.min(20))
        .min(cap)
        .max(Duration::from_nanos(1));
    let half = envelope / 2;
    // splitmix64 of (seed, attempt): cheap, stateless, well-mixed.
    let mut z = seed ^ (u64::from(attempt)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    let jitter = Duration::from_nanos(z % (half.as_nanos().max(1) as u64));
    (half + jitter).min(cap)
}

/// Counters for one link endpoint, surviving reconnects (they belong
/// to the edge, not the socket).
#[derive(Debug, Default)]
struct LinkStatCells {
    frames_sent: AtomicU64,
    flushes: AtomicU64,
    serialize_failures: AtomicU64,
    decode_failures: AtomicU64,
    dropped_publications: AtomicU64,
    connects: AtomicU64,
    down_reason: Mutex<Option<String>>,
}

/// A snapshot of one link endpoint's counters
/// ([`TcpNetwork::link_stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkStats {
    /// Frames successfully written (not necessarily flushed yet).
    pub frames_sent: u64,
    /// Successful flush syscalls that pushed buffered frames out. The
    /// dispatch loop flushes once per `OutputBatch`, so under batched
    /// load this stays well below `frames_sent`.
    pub flushes: u64,
    /// Frames that failed to serialize (JSON mode only — binary
    /// encoding is total). Each one is counted, never dropped
    /// silently.
    pub serialize_failures: u64,
    /// Inbound frames that failed to decode; each takes the link down
    /// with a reason naming the corruption.
    pub decode_failures: u64,
    /// Publications dropped from the down-queue by the high-water
    /// mark ([`TcpOptions::down_queue_hwm`]).
    pub dropped_publications: u64,
    /// Connections installed on this endpoint (initial dial plus every
    /// reconnect). Exactly one per link generation — a stale dialer or
    /// reader from a superseded generation can neither install nor
    /// tear down, so churn tests can pin this count.
    pub connects: u64,
    /// Why the link last went down (`None` if it never did).
    pub down_reason: Option<String>,
}

enum Input {
    FromBroker(BrokerId, Vec<Message>),
    FromClient(ClientId, ClientOp),
    CreateClient(ClientId),
    Shutdown,
}

#[derive(Debug, Default)]
struct Registry {
    homes: BTreeMap<ClientId, BrokerId>,
    deliveries: BTreeMap<ClientId, Sender<PublicationMsg>>,
    move_events: BTreeMap<ClientId, Sender<MoveOutcome>>,
}

/// One endpoint of an overlay link (this broker's writer toward one
/// neighbour).
///
/// While down, outbound protocol **messages** (not serialized frames)
/// queue here and are re-encoded on reconnect: the binary codec's
/// string table belongs to a single connection, so bytes encoded
/// against the old connection's table would desync a redialed peer.
enum LinkState {
    Up {
        w: BufWriter<TcpStream>,
        /// A clone kept for `shutdown()` so the blocked reader thread
        /// observes EOF when the link is torn down.
        sock: TcpStream,
        /// This connection's frame encoder (owns the outgoing string
        /// table; dies with the socket).
        enc: FrameEncoder,
        /// Messages written into `w` since the last successful flush.
        /// If the link dies before they reach the socket they move to
        /// the down-queue and are resent on reconnect.
        pending: Vec<Message>,
    },
    Down {
        queued: VecDeque<Message>,
        /// How many of `queued` are publications (the droppable kind),
        /// maintained incrementally for the high-water-mark check.
        queued_pubs: usize,
        /// A redial thread for this link is already running.
        redialing: bool,
    },
}

impl LinkState {
    fn fresh_down() -> LinkState {
        LinkState::Down {
            queued: VecDeque::new(),
            queued_pubs: 0,
            redialing: false,
        }
    }
}

struct Link {
    state: Mutex<LinkState>,
    /// When a frame (of any kind) last arrived from the peer.
    last_heard: Mutex<Instant>,
    /// The link's generation: bumped under the state lock whenever a
    /// new connection is installed or the state is forcibly reset
    /// (kill, shutdown). Redial threads and readers capture the
    /// generation they were spawned for and stand down when it has
    /// moved on — this is what makes "exactly one dialer, exactly one
    /// authoritative connection per link" hold across kill/restart
    /// races.
    generation: AtomicU64,
    stats: LinkStatCells,
}

impl Link {
    fn new_down() -> Self {
        Link {
            state: Mutex::new(LinkState::fresh_down()),
            last_heard: Mutex::new(Instant::now()),
            generation: AtomicU64::new(0),
            stats: LinkStatCells::default(),
        }
    }

    fn note_down(&self, reason: &str) {
        *self.stats.down_reason.lock() = Some(reason.to_string());
    }
}

/// Whether a message is a publication — the only kind the down-queue
/// high-water mark may drop. Everything else (subscription control,
/// movement protocol) is load-bearing for protocol correctness.
fn is_droppable(m: &Message) -> bool {
    matches!(m, Message::PubSub(PubSubMsg::Publish(_)))
}

fn count_droppable<'a>(msgs: impl IntoIterator<Item = &'a Message>) -> usize {
    msgs.into_iter().filter(|m| is_droppable(m)).count()
}

/// Appends `msgs` to a down link's queue, then enforces the high-water
/// mark by dropping the **oldest publications** (never protocol or
/// movement frames). The scan is linear per drop — overflow is the
/// pathological case, not the steady state.
fn enqueue_down(
    stats: &LinkStatCells,
    queued: &mut VecDeque<Message>,
    queued_pubs: &mut usize,
    msgs: impl IntoIterator<Item = Message>,
    hwm: usize,
) {
    for m in msgs {
        if is_droppable(&m) {
            *queued_pubs += 1;
        }
        queued.push_back(m);
    }
    while queued.len() > hwm && *queued_pubs > 0 {
        let Some(idx) = queued.iter().position(is_droppable) else {
            break;
        };
        queued.remove(idx);
        *queued_pubs -= 1;
        stats.dropped_publications.fetch_add(1, Ordering::Relaxed);
    }
}

struct Shared {
    topology: Arc<Topology>,
    config: MobileBrokerConfig,
    options: TcpOptions,
    /// Input channel per broker; swapped on kill/restart, hence the
    /// lock (readers clone the sender at spawn time).
    inputs: RwLock<BTreeMap<BrokerId, Sender<Input>>>,
    registry: RwLock<Registry>,
    /// `links[owner][peer]`: owner's endpoint of the owner–peer edge.
    /// Starts as the static overlay's edge set; overlay self-repair
    /// adds endpoints for the new repair edges at runtime (lock order:
    /// this map's lock strictly before any `Link::state` mutex).
    links: RwLock<BTreeMap<BrokerId, BTreeMap<BrokerId, Arc<Link>>>>,
    /// Every broker's listener address (stable across kill/restart —
    /// the "machine" keeps its port, only the process dies).
    addrs: BTreeMap<BrokerId, SocketAddr>,
    /// Brokers currently killed: their acceptor refuses connections
    /// and their links neither flush nor redial.
    down: RwLock<BTreeSet<BrokerId>>,
    /// Brokers suspected permanently dead (redial exhaustion or
    /// heartbeat silence past [`TcpOptions::failure_timeout`], or a
    /// `BrokerDeath` flood notice). A suspected broker's links stop
    /// redialing and it cannot rejoin — the overlay has repaired
    /// around it.
    suspected: RwLock<BTreeSet<BrokerId>>,
    shutting_down: AtomicBool,
    /// Heartbeats received, per broker (failure-detector liveness).
    pings: BTreeMap<BrokerId, AtomicU64>,
    /// Reader/dialer/acceptor threads, joined at shutdown.
    aux_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Shared({} brokers)", self.addrs.len())
    }
}

/// A broker overlay whose links are real TCP sockets, with a
/// heartbeat failure detector and crash–restart recovery from a
/// per-broker [`DurabilityLog`].
pub struct TcpNetwork {
    shared: Arc<Shared>,
    broker_handles: Mutex<BTreeMap<BrokerId, JoinHandle<()>>>,
    /// Receiver for a killed broker's fresh input channel, consumed by
    /// `restart_broker`.
    pending_rx: Mutex<BTreeMap<BrokerId, Receiver<Input>>>,
    /// Each broker's stable storage: the durability log its
    /// `MobileBroker` drives, surviving `kill_broker`.
    wals: BTreeMap<BrokerId, Arc<std::sync::Mutex<MemoryLog>>>,
}

impl std::fmt::Debug for TcpNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TcpNetwork({} brokers)", self.wals.len())
    }
}

impl TcpNetwork {
    /// The builder entry point: `TcpNetwork::builder().overlay(..)
    /// .options(..).bind(..).tcp(..).start()`.
    pub fn builder() -> TcpNetworkBuilder {
        TcpNetworkBuilder::default()
    }

    /// Binds one loopback listener per broker on an ephemeral port,
    /// connects every overlay edge, and starts the broker threads.
    ///
    /// # Errors
    ///
    /// Propagates socket bind/connect and thread-spawn errors; any
    /// threads already started are shut down and joined before the
    /// error is returned.
    #[deprecated(
        since = "0.2.0",
        note = "use TcpNetwork::builder().overlay(..).options(..).start()"
    )]
    pub fn start(topology: Topology, config: MobileBrokerConfig) -> io::Result<TcpNetwork> {
        Self::start_inner(topology, config, TcpOptions::default(), |_| {
            "127.0.0.1:0".to_string()
        })
    }

    /// Like `TcpNetwork::start`, but with explicit transport options
    /// (frame codec, down-queue bound) and bind addresses.
    ///
    /// # Errors
    ///
    /// Same as `TcpNetwork::start_with`.
    #[deprecated(
        since = "0.2.0",
        note = "use TcpNetwork::builder().overlay(..).options(..).tcp(..).bind(..).start()"
    )]
    pub fn start_with_options(
        topology: Topology,
        config: MobileBrokerConfig,
        options: TcpOptions,
        bind_addr: impl FnMut(BrokerId) -> String,
    ) -> io::Result<TcpNetwork> {
        Self::start_inner(topology, config, options, bind_addr)
    }

    /// Like `TcpNetwork::start`, but binds each broker's listener at
    /// the address chosen by `bind_addr` (e.g. fixed ports for a
    /// firewall-pinned deployment). Port `0` picks an ephemeral port.
    ///
    /// # Errors
    ///
    /// Propagates socket bind/connect and thread-spawn errors — a
    /// colliding or unbindable address reports `AddrInUse` (or the
    /// underlying error) instead of aborting the process.
    #[deprecated(
        since = "0.2.0",
        note = "use TcpNetwork::builder().overlay(..).options(..).bind(..).start()"
    )]
    pub fn start_with(
        topology: Topology,
        config: MobileBrokerConfig,
        bind_addr: impl FnMut(BrokerId) -> String,
    ) -> io::Result<TcpNetwork> {
        Self::start_inner(topology, config, TcpOptions::default(), bind_addr)
    }

    fn start_inner(
        topology: Topology,
        config: MobileBrokerConfig,
        options: TcpOptions,
        mut bind_addr: impl FnMut(BrokerId) -> String,
    ) -> io::Result<TcpNetwork> {
        let topology = Arc::new(topology);
        // Phase 1: bind all listeners.
        let mut listeners: BTreeMap<BrokerId, TcpListener> = BTreeMap::new();
        let mut addrs: BTreeMap<BrokerId, SocketAddr> = BTreeMap::new();
        for b in topology.brokers() {
            let addr = bind_addr(b);
            let l = TcpListener::bind(&addr).map_err(|e| {
                io::Error::new(e.kind(), format!("bind broker {b} listener at {addr}: {e}"))
            })?;
            addrs.insert(b, l.local_addr()?);
            listeners.insert(b, l);
        }
        // Phase 2: shared state, acceptors, and the initial dials.
        let mut inputs: BTreeMap<BrokerId, Sender<Input>> = BTreeMap::new();
        let mut input_rx: BTreeMap<BrokerId, Receiver<Input>> = BTreeMap::new();
        let mut links: BTreeMap<BrokerId, BTreeMap<BrokerId, Arc<Link>>> = BTreeMap::new();
        let mut pings: BTreeMap<BrokerId, AtomicU64> = BTreeMap::new();
        for b in topology.brokers() {
            let (tx, rx) = unbounded();
            inputs.insert(b, tx);
            input_rx.insert(b, rx);
            pings.insert(b, AtomicU64::new(0));
            let peers = topology
                .neighbors(b)
                .iter()
                .map(|&n| (n, Arc::new(Link::new_down())))
                .collect();
            links.insert(b, peers);
        }
        let shared = Arc::new(Shared {
            topology: Arc::clone(&topology),
            config: config.clone(),
            options,
            inputs: RwLock::new(inputs),
            registry: RwLock::new(Registry::default()),
            links: RwLock::new(links),
            addrs,
            down: RwLock::new(BTreeSet::new()),
            suspected: RwLock::new(BTreeSet::new()),
            shutting_down: AtomicBool::new(false),
            pings,
            aux_threads: Mutex::new(Vec::new()),
        });
        let net = TcpNetwork {
            shared: Arc::clone(&shared),
            broker_handles: Mutex::new(BTreeMap::new()),
            pending_rx: Mutex::new(BTreeMap::new()),
            wals: topology
                .brokers()
                .map(|b| (b, MemoryLog::shared()))
                .collect(),
        };
        for (b, listener) in listeners {
            spawn_acceptor(&shared, b, listener)?;
        }
        // Dial each edge once, lower id dialing the higher (the same
        // side redials after failures). The acceptors are already up,
        // so one synchronous attempt per edge suffices here.
        for (a, b) in topology.edges() {
            dial_link(&shared, a, b, None)?;
        }
        // Phase 3: broker threads (from here on `net`'s Drop handles
        // cleanup if a later spawn fails).
        for b in topology.brokers() {
            let Some(rx) = input_rx.remove(&b) else {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("no input channel for broker {b}"),
                ));
            };
            let mut broker = MobileBroker::new(b, Arc::clone(&topology), config.clone());
            let wal = Arc::clone(&net.wals[&b]);
            let wal: Arc<std::sync::Mutex<dyn DurabilityLog>> = wal;
            broker
                .attach_durability(wal)
                .map_err(|e| io::Error::new(e.kind(), format!("attach WAL for {b}: {e}")))?;
            net.spawn_broker(b, broker, Vec::new(), rx)?;
        }
        Ok(net)
    }

    fn spawn_broker(
        &self,
        b: BrokerId,
        broker: MobileBroker,
        initial_outs: Vec<Output>,
        rx: Receiver<Input>,
    ) -> io::Result<()> {
        let shared = Arc::clone(&self.shared);
        let handle = std::thread::Builder::new()
            .name(format!("tcp-broker-{b}"))
            .spawn(move || tcp_broker_main(b, broker, initial_outs, rx, shared))
            .map_err(|e| io::Error::new(e.kind(), format!("spawn broker thread {b}: {e}")))?;
        self.broker_handles.lock().insert(b, handle);
        Ok(())
    }

    /// Creates (attaches and starts) a client at `broker`, returning
    /// its handle.
    ///
    /// # Panics
    ///
    /// Panics if the client id is already in use.
    pub fn create_client(&self, broker: BrokerId, id: ClientId) -> TcpClient {
        let (dtx, drx) = unbounded();
        let (mtx, mrx) = unbounded();
        {
            let mut reg = self.shared.registry.write();
            assert!(
                !reg.homes.contains_key(&id),
                "client id {id} already in use"
            );
            reg.homes.insert(id, broker);
            reg.deliveries.insert(id, dtx);
            reg.move_events.insert(id, mtx);
        }
        let _ = self.shared.inputs.read()[&broker].send(Input::CreateClient(id));
        TcpClient {
            id,
            shared: Arc::clone(&self.shared),
            deliveries: drx,
            moves: mrx,
        }
    }

    /// The broker currently hosting `client`.
    pub fn home_of(&self, client: ClientId) -> Option<BrokerId> {
        self.shared.registry.read().homes.get(&client).copied()
    }

    /// Whether `owner`'s endpoint of the link to `peer` is currently
    /// connected (failure-detector view).
    pub fn link_up(&self, owner: BrokerId, peer: BrokerId) -> bool {
        link_of(&self.shared, owner, peer)
            .is_some_and(|l| matches!(*l.state.lock(), LinkState::Up { .. }))
    }

    /// How long ago `owner` last heard anything (heartbeat or protocol
    /// frame) from `peer`.
    pub fn peer_silence(&self, owner: BrokerId, peer: BrokerId) -> Option<Duration> {
        let link = link_of(&self.shared, owner, peer)?;
        let at = *link.last_heard.lock();
        Some(at.elapsed())
    }

    /// Brokers this overlay suspects permanently dead (the overlay has
    /// self-repaired around them). Empty unless
    /// [`TcpOptions::suspicion_after`] is set.
    pub fn suspected(&self) -> BTreeSet<BrokerId> {
        self.shared.suspected.read().clone()
    }

    /// Total heartbeats `broker` has received from its neighbours.
    pub fn heartbeats_seen(&self, broker: BrokerId) -> u64 {
        self.shared
            .pings
            .get(&broker)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// The frame codec this overlay runs.
    pub fn wire_mode(&self) -> WireMode {
        self.shared.options.wire
    }

    /// The listener address of `broker` (stable across kill/restart).
    pub fn broker_addr(&self, broker: BrokerId) -> Option<SocketAddr> {
        self.shared.addrs.get(&broker).copied()
    }

    /// Counters for `owner`'s endpoint of the link to `peer`. The
    /// counters belong to the edge and survive reconnects.
    pub fn link_stats(&self, owner: BrokerId, peer: BrokerId) -> Option<LinkStats> {
        let link = link_of(&self.shared, owner, peer)?;
        let s = &link.stats;
        let down_reason = s.down_reason.lock().clone();
        Some(LinkStats {
            frames_sent: s.frames_sent.load(Ordering::Relaxed),
            flushes: s.flushes.load(Ordering::Relaxed),
            serialize_failures: s.serialize_failures.load(Ordering::Relaxed),
            decode_failures: s.decode_failures.load(Ordering::Relaxed),
            dropped_publications: s.dropped_publications.load(Ordering::Relaxed),
            connects: s.connects.load(Ordering::Relaxed),
            down_reason,
        })
    }

    /// Crashes `broker`: its thread is torn down, its sockets severed
    /// (neighbours observe the disconnect and start queueing +
    /// redialing), and any inputs it had not yet applied are lost.
    /// Its durability log — everything appended before the crash —
    /// survives for [`TcpNetwork::restart_broker`].
    pub fn kill_broker(&self, broker: BrokerId) {
        // Mark down first so reader-side disconnect handling neither
        // redials on this broker's behalf nor lets its acceptor admit
        // new connections while it is dead.
        self.shared.down.write().insert(broker);
        // Fresh input channel: frames and commands sent from now on
        // wait for the restarted process; the old channel (with any
        // undelivered inputs) dies with the thread.
        let (tx, rx) = unbounded();
        let old = self.shared.inputs.write().insert(broker, tx);
        self.pending_rx.lock().insert(broker, rx);
        if let Some(old_tx) = old {
            let _ = old_tx.send(Input::Shutdown);
        }
        // Sever every link endpoint; drop anything it had queued. The
        // generation bump (under the state lock) retires any redial
        // thread or reader still running for the old process — this is
        // what prevents a stale dialer surviving the kill from racing
        // the restart's fresh one.
        let peers: Vec<Arc<Link>> = self
            .shared
            .links
            .read()
            .get(&broker)
            .map(|m| m.values().cloned().collect())
            .unwrap_or_default();
        for link in peers {
            let mut st = link.state.lock();
            if let LinkState::Up { sock, .. } = &*st {
                let _ = sock.shutdown(std::net::Shutdown::Both);
            }
            link.generation.fetch_add(1, Ordering::SeqCst);
            link.note_down("broker killed");
            *st = LinkState::fresh_down();
        }
        if let Some(h) = self.broker_handles.lock().remove(&broker) {
            let _ = h.join();
        }
    }

    /// Restarts a broker previously crashed with
    /// [`TcpNetwork::kill_broker`]: rebuilds its state from the
    /// durability log (checkpoint + record replay), re-arms the timers
    /// of any in-flight movement, rejoins the overlay (dialing out and
    /// accepting again), and flushes whatever its neighbours queued
    /// during the outage.
    ///
    /// # Errors
    ///
    /// Fails if the broker is not currently killed, or on thread-spawn
    /// / log errors.
    pub fn restart_broker(&self, broker: BrokerId) -> io::Result<()> {
        if !self.pending_rx.lock().contains_key(&broker) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("broker {broker} is not killed"),
            ));
        }
        if self.shared.suspected.read().contains(&broker) {
            // The overlay declared it dead and repaired around it; its
            // old edges no longer exist. Coming back is a *join*, not a
            // restart.
            return Err(io::Error::new(
                io::ErrorKind::AddrNotAvailable,
                format!("broker {broker} was excised by overlay self-repair"),
            ));
        }
        let log = Arc::clone(&self.wals[&broker]);
        let (snapshot, records) = log
            .lock()
            .map_err(|_| io::Error::other(format!("broker {broker} WAL mutex poisoned")))?
            .contents();
        let Some(snapshot) = snapshot else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("broker {broker} durability log holds no checkpoint"),
            ));
        };
        let (mut recovered, timer_outs) = MobileBroker::recover(
            Arc::clone(&self.shared.topology),
            self.shared.config.clone(),
            snapshot,
            &records,
        );
        // Re-attach the log; this checkpoints the recovered state and
        // truncates the replayed records.
        let wal: Arc<std::sync::Mutex<dyn DurabilityLog>> = log;
        recovered
            .attach_durability(wal)
            .map_err(|e| io::Error::new(e.kind(), format!("re-attach WAL for {broker}: {e}")))?;
        // Recovery succeeded; only now consume the pending channel so a
        // failed attempt leaves the broker cleanly killed and
        // retryable.
        let rx = self.pending_rx.lock().remove(&broker).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("broker {broker} was restarted concurrently"),
            )
        })?;
        self.shared.down.write().remove(&broker);
        self.spawn_broker(broker, recovered, timer_outs, rx)?;
        // Rejoin the overlay: redial the edges this broker dials (its
        // current link map — repair edges included); for the rest, the
        // surviving dialer's backoff loop is already knocking and will
        // get through now that the acceptor answers.
        let peers: Vec<BrokerId> = self
            .shared
            .links
            .read()
            .get(&broker)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default();
        for n in peers {
            if broker < n {
                maybe_redial(&self.shared, broker, n);
            }
        }
        Ok(())
    }

    /// Stops all broker threads, closes every socket so reader threads
    /// observe EOF, and waits for them all.
    pub fn shutdown(self) {
        drop(self); // Drop runs the actual teardown.
    }

    fn stop(&mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        for tx in self.shared.inputs.read().values() {
            let _ = tx.send(Input::Shutdown);
        }
        let all_links: Vec<Arc<Link>> = self
            .shared
            .links
            .read()
            .values()
            .flat_map(|m| m.values().cloned())
            .collect();
        for link in all_links {
            let mut st = link.state.lock();
            if let LinkState::Up { sock, .. } = &*st {
                let _ = sock.shutdown(std::net::Shutdown::Both);
            }
            link.generation.fetch_add(1, Ordering::SeqCst);
            *st = LinkState::fresh_down();
        }
        // Wake each acceptor so it can observe the flag and exit.
        for addr in self.shared.addrs.values() {
            let _ = TcpStream::connect_timeout(addr, Duration::from_millis(200));
        }
        for (_, h) in std::mem::take(&mut *self.broker_handles.lock()) {
            let _ = h.join();
        }
        // Aux threads exit on EOF / the flag; redial threads wake from
        // their (capped) backoff sleep and observe the flag.
        loop {
            let batch = std::mem::take(&mut *self.shared.aux_threads.lock());
            if batch.is_empty() {
                break;
            }
            for h in batch {
                let _ = h.join();
            }
        }
    }
}

impl Drop for TcpNetwork {
    fn drop(&mut self) {
        self.stop();
    }
}

/// A client handle on a [`TcpNetwork`] (same surface as
/// [`crate::Client`]).
#[derive(Debug)]
pub struct TcpClient {
    id: ClientId,
    shared: Arc<Shared>,
    deliveries: Receiver<PublicationMsg>,
    moves: Receiver<MoveOutcome>,
}

impl TcpClient {
    /// The client id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    fn send_op(&self, op: ClientOp) {
        let home = self
            .shared
            .registry
            .read()
            .homes
            .get(&self.id)
            .copied()
            .expect("client registered");
        let _ = self.shared.inputs.read()[&home].send(Input::FromClient(self.id, op));
    }

    /// Issues a subscription.
    pub fn subscribe(&self, filter: Filter) {
        self.send_op(ClientOp::Subscribe(filter));
    }

    /// Issues an advertisement.
    pub fn advertise(&self, filter: Filter) {
        self.send_op(ClientOp::Advertise(filter));
    }

    /// Publishes a publication.
    pub fn publish(&self, content: Publication) {
        self.send_op(ClientOp::Publish(content));
    }

    /// Requests a movement and waits up to `timeout` for it to finish.
    pub fn move_to(
        &self,
        target: BrokerId,
        protocol: transmob_core::ProtocolKind,
        timeout: Duration,
    ) -> bool {
        self.send_op(ClientOp::MoveTo(target, protocol));
        matches!(
            self.moves.recv_timeout(timeout),
            Ok(MoveOutcome {
                committed: true,
                ..
            })
        )
    }

    /// Receives the next notification, waiting up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<PublicationMsg> {
        self.deliveries.recv_timeout(timeout).ok()
    }

    /// Drains all currently queued notifications.
    pub fn drain(&self) -> Vec<PublicationMsg> {
        let mut out = Vec::new();
        while let Ok(p) = self.deliveries.try_recv() {
            out.push(p);
        }
        out
    }
}

// ---------------------------------------------------------------------
// Link management
// ---------------------------------------------------------------------

fn link_of(shared: &Shared, owner: BrokerId, peer: BrokerId) -> Option<Arc<Link>> {
    shared
        .links
        .read()
        .get(&owner)
        .and_then(|m| m.get(&peer))
        .cloned()
}

/// `link_of`, creating the endpoint if it does not exist yet. Overlay
/// self-repair adds edges that were not in the static topology; the
/// endpoints for them materialize lazily — on the anchor side when the
/// repair outputs are dispatched, on the far side when the anchor's
/// dial arrives.
fn ensure_link(shared: &Shared, owner: BrokerId, peer: BrokerId) -> Arc<Link> {
    if let Some(link) = link_of(shared, owner, peer) {
        return link;
    }
    let mut links = shared.links.write();
    Arc::clone(
        links
            .entry(owner)
            .or_default()
            .entry(peer)
            .or_insert_with(|| Arc::new(Link::new_down())),
    )
}

/// Writes one protocol-message frame on `owner`'s link to `peer`
/// **without flushing** — the dispatch loop flushes each touched link
/// once per `OutputBatch` ([`flush_link`]). While the link is down the
/// messages queue un-encoded (the binary string table belongs to a
/// single connection), bounded by the down-queue high-water mark.
fn send_msgs(shared: &Arc<Shared>, owner: BrokerId, peer: BrokerId, msgs: Vec<Message>) {
    // Auto-vivify: repair edges are not in the static link map; the
    // first frame the repair routes over one creates the endpoint.
    let link = ensure_link(shared, owner, peer);
    let kick = {
        let mut st = link.state.lock();
        match &mut *st {
            LinkState::Up {
                w,
                sock,
                enc,
                pending,
                ..
            } => {
                let frame = Frame::Msg {
                    from: owner.0,
                    msgs,
                };
                let write_ok = match enc.encode(&frame) {
                    Ok(bytes) => w.write_all(bytes).is_ok(),
                    Err(e) => {
                        // A frame that cannot be serialized (JSON mode
                        // only; binary encoding is total) must never
                        // vanish silently: count it, and in debug
                        // builds treat any non-injected failure as a
                        // bug.
                        link.stats
                            .serialize_failures
                            .fetch_add(1, Ordering::Relaxed);
                        debug_assert!(
                            e.0.contains("injected"),
                            "frame serialize failed on {owner}->{peer}: {e}"
                        );
                        return;
                    }
                };
                let Frame::Msg { msgs, .. } = frame else {
                    unreachable!()
                };
                if write_ok {
                    link.stats.frames_sent.fetch_add(1, Ordering::Relaxed);
                    pending.extend(msgs);
                    false
                } else {
                    // Peer disconnect detected on the write path (the
                    // heartbeat guarantees this fires within one
                    // interval of a silent peer death). Unflushed
                    // frames join the failed one in the down-queue.
                    let _ = sock.shutdown(std::net::Shutdown::Both);
                    let mut queued: VecDeque<Message> = std::mem::take(pending).into();
                    let mut queued_pubs = count_droppable(&queued);
                    enqueue_down(
                        &link.stats,
                        &mut queued,
                        &mut queued_pubs,
                        msgs,
                        shared.options.down_queue_hwm,
                    );
                    link.note_down("write failed");
                    *st = LinkState::Down {
                        queued,
                        queued_pubs,
                        redialing: false,
                    };
                    true
                }
            }
            LinkState::Down {
                queued,
                queued_pubs,
                ..
            } => {
                enqueue_down(
                    &link.stats,
                    queued,
                    queued_pubs,
                    msgs,
                    shared.options.down_queue_hwm,
                );
                // A static edge already has a dialer knocking; a fresh
                // repair edge does not — kick one (no-op when one runs).
                true
            }
        }
    };
    if kick {
        maybe_redial(shared, owner, peer);
    }
}

/// Sends one heartbeat on `owner`'s link to `peer`, flushing
/// immediately (the probe doubles as write-path failure detection, so
/// it must actually hit the socket). Skipped while the link is down —
/// a stale ping carries no information.
fn send_ping(shared: &Arc<Shared>, owner: BrokerId, peer: BrokerId) {
    let Some(link) = link_of(shared, owner, peer) else {
        return;
    };
    let went_down = {
        let mut st = link.state.lock();
        match &mut *st {
            LinkState::Up {
                w,
                sock,
                enc,
                pending,
                ..
            } => {
                let frame = Frame::Ping { from: owner.0 };
                let write_ok = match enc.encode(&frame) {
                    Ok(bytes) => w.write_all(bytes).and_then(|()| w.flush()).is_ok(),
                    Err(e) => {
                        link.stats
                            .serialize_failures
                            .fetch_add(1, Ordering::Relaxed);
                        debug_assert!(
                            e.0.contains("injected"),
                            "ping serialize failed on {owner}->{peer}: {e}"
                        );
                        return;
                    }
                };
                if write_ok {
                    link.stats.frames_sent.fetch_add(1, Ordering::Relaxed);
                    link.stats.flushes.fetch_add(1, Ordering::Relaxed);
                    // The flush carried any batched frames with it.
                    pending.clear();
                    false
                } else {
                    let _ = sock.shutdown(std::net::Shutdown::Both);
                    let queued: VecDeque<Message> = std::mem::take(pending).into();
                    let queued_pubs = count_droppable(&queued);
                    link.note_down("heartbeat write failed");
                    *st = LinkState::Down {
                        queued,
                        queued_pubs,
                        redialing: false,
                    };
                    true
                }
            }
            LinkState::Down { .. } => false,
        }
    };
    if went_down {
        maybe_redial(shared, owner, peer);
    }
}

/// Flushes `owner`'s link to `peer` — called once per `OutputBatch`
/// for each link the batch wrote to, turning N frames into one flush
/// syscall. A flush failure demotes the unflushed frames to the
/// down-queue (they are resent on reconnect).
fn flush_link(shared: &Arc<Shared>, owner: BrokerId, peer: BrokerId) {
    let Some(link) = link_of(shared, owner, peer) else {
        return;
    };
    let went_down = {
        let mut st = link.state.lock();
        match &mut *st {
            LinkState::Up {
                w, sock, pending, ..
            } => {
                if pending.is_empty() {
                    false // nothing written since the last flush
                } else if w.flush().is_ok() {
                    link.stats.flushes.fetch_add(1, Ordering::Relaxed);
                    pending.clear();
                    false
                } else {
                    let _ = sock.shutdown(std::net::Shutdown::Both);
                    let queued: VecDeque<Message> = std::mem::take(pending).into();
                    let queued_pubs = count_droppable(&queued);
                    link.note_down("flush failed");
                    *st = LinkState::Down {
                        queued,
                        queued_pubs,
                        redialing: false,
                    };
                    true
                }
            }
            LinkState::Down { .. } => false,
        }
    };
    if went_down {
        maybe_redial(shared, owner, peer);
    }
}

/// Marks `owner`'s link to `peer` down (reader-side disconnect),
/// recording `reason` so chaos tests can assert *why* the link died,
/// and kicks the redial loop if this endpoint is the dialer. Frames
/// written but not yet flushed move to the down-queue for resend.
///
/// `generation` is the connection the caller observed dying: if the
/// link has since moved on (a newer connection was installed, or a
/// kill reset the state), the stale teardown is a no-op — a reader
/// from a superseded socket must not kill its healthy successor.
fn mark_link_down(
    shared: &Arc<Shared>,
    owner: BrokerId,
    peer: BrokerId,
    reason: &str,
    generation: u64,
) {
    let Some(link) = link_of(shared, owner, peer) else {
        return;
    };
    {
        let mut st = link.state.lock();
        if link.generation.load(Ordering::SeqCst) != generation {
            return;
        }
        if let LinkState::Up { sock, pending, .. } = &mut *st {
            let _ = sock.shutdown(std::net::Shutdown::Both);
            let queued: VecDeque<Message> = std::mem::take(pending).into();
            let queued_pubs = count_droppable(&queued);
            link.note_down(reason);
            *st = LinkState::Down {
                queued,
                queued_pubs,
                redialing: false,
            };
        }
    }
    maybe_redial(shared, owner, peer);
}

/// Starts a redial thread for the (owner → peer) link if owner is the
/// edge's dialer, the link is down, no redialer is running yet, and
/// the peer is not suspected dead.
///
/// The thread captures the link generation it was authorized under;
/// every wake-up re-validates it, so a dialer stranded in a backoff
/// sleep across a kill/restart of `owner` stands down instead of
/// racing the restart's fresh dialer (the duplicate used to install a
/// second connection whose leftover reader then tore down the healthy
/// one).
fn maybe_redial(shared: &Arc<Shared>, owner: BrokerId, peer: BrokerId) {
    if owner > peer {
        return; // the peer dials this edge
    }
    if shared.shutting_down.load(Ordering::SeqCst)
        || shared.down.read().contains(&owner)
        || shared.suspected.read().contains(&peer)
    {
        return;
    }
    let Some(link) = link_of(shared, owner, peer) else {
        return;
    };
    let my_gen = {
        let mut st = link.state.lock();
        match &mut *st {
            LinkState::Down { redialing, .. } => {
                if *redialing {
                    return;
                }
                *redialing = true;
            }
            LinkState::Up { .. } => return,
        }
        link.generation.load(Ordering::SeqCst)
    };
    let shared2 = Arc::clone(shared);
    // The jitter seed only has to decorrelate the links of one
    // process; edge identity plus generation does that and keeps runs
    // reproducible.
    let seed = (u64::from(owner.0) << 40) ^ (u64::from(peer.0) << 20) ^ my_gen;
    let handle = std::thread::Builder::new()
        .name(format!("tcp-redial-{owner}-{peer}"))
        .spawn(move || {
            let opts = &shared2.options;
            let mut attempt = 0u32;
            // Clears the redial flag iff this thread still owns it.
            let stand_down = |shared: &Arc<Shared>| {
                if let Some(link) = link_of(shared, owner, peer) {
                    let mut st = link.state.lock();
                    if link.generation.load(Ordering::SeqCst) == my_gen {
                        if let LinkState::Down { redialing, .. } = &mut *st {
                            *redialing = false;
                        }
                    }
                }
            };
            loop {
                std::thread::sleep(redial_delay(
                    opts.redial_base,
                    opts.redial_cap,
                    attempt,
                    seed,
                ));
                attempt += 1;
                if shared2.shutting_down.load(Ordering::SeqCst)
                    || shared2.down.read().contains(&owner)
                    || shared2.suspected.read().contains(&peer)
                {
                    stand_down(&shared2);
                    return;
                }
                // A kill/restart (or a competing install) moved the
                // link to a new generation: this dialer is stale.
                let Some(link) = link_of(&shared2, owner, peer) else {
                    return;
                };
                if link.generation.load(Ordering::SeqCst) != my_gen {
                    return;
                }
                if dial_link(&shared2, owner, peer, Some(my_gen)).is_ok() {
                    return; // install_link cleared the flag
                }
                if let Some(limit) = opts.suspicion_after {
                    if attempt >= limit {
                        // Redial exhaustion: promote the dead link to a
                        // dead *broker* and let the overlay self-repair.
                        stand_down(&shared2);
                        suspect_broker(&shared2, owner, peer);
                        return;
                    }
                }
            }
        });
    match handle {
        Ok(h) => shared.aux_threads.lock().push(h),
        Err(_) => {
            if let LinkState::Down { redialing, .. } = &mut *link.state.lock() {
                *redialing = false;
            }
        }
    }
}

/// Promotes a suspicion into the protocol: marks `dead` suspected
/// (first detector wins — the `BrokerDeath` flood reaches everyone
/// else) and injects the death notice into `owner`'s own input queue,
/// where the broker runs `MobileBroker::handle_broker_death`: repair
/// the topology copy, rebuild routing state, resolve crossed
/// movements, flood the notice — including over fresh repair edges,
/// whose TCP links materialize on first send.
fn suspect_broker(shared: &Arc<Shared>, owner: BrokerId, dead: BrokerId) {
    if !shared.suspected.write().insert(dead) {
        return; // already suspected; the flood is doing its job
    }
    if let Some(tx) = shared.inputs.read().get(&owner) {
        let _ = tx.send(Input::FromBroker(dead, vec![Message::BrokerDeath { dead }]));
    }
}

/// Dials `peer` on behalf of `owner` and installs the connection.
/// Handshake: dialer sends its broker id and wire-mode token, acceptor
/// answers `ok` only if its broker process is actually up and the
/// codec matches — so queued frames are never flushed into a dead (or
/// differently-framed) peer.
///
/// `expect_generation` (redial path) makes the install conditional: if
/// the link's generation moved while the dial was in flight (owner
/// killed, competing install), the fresh socket is discarded instead
/// of installed on behalf of a world that no longer exists.
fn dial_link(
    shared: &Arc<Shared>,
    owner: BrokerId,
    peer: BrokerId,
    expect_generation: Option<u64>,
) -> io::Result<()> {
    let stream = TcpStream::connect(shared.addrs[&peer])?;
    stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
    {
        let mut w = BufWriter::new(stream.try_clone()?);
        writeln!(w, "{} {}", owner.0, shared.options.wire.token())?;
        w.flush()?;
    }
    // Read the reply byte-by-byte: the peer flushes queued protocol
    // frames immediately after "ok\n", and a buffered reader here
    // would swallow those bytes before the reader thread exists.
    let mut line = String::new();
    {
        use std::io::Read;
        let mut one = [0u8; 1];
        let mut raw = stream.try_clone()?;
        loop {
            if raw.read(&mut one)? == 0 || one[0] == b'\n' {
                break;
            }
            line.push(one[0] as char);
            if line.len() > 16 {
                break;
            }
        }
    }
    if line.trim() != "ok" {
        return Err(io::Error::new(
            io::ErrorKind::ConnectionRefused,
            format!("peer {peer} refused handshake"),
        ));
    }
    stream.set_read_timeout(None)?;
    install_link(shared, owner, peer, stream, expect_generation)
}

/// How many queued messages a reconnect packs into one frame when it
/// drains the down-queue.
const RECONNECT_CHUNK: usize = 256;

/// Installs a fresh socket as `owner`'s endpoint toward `peer`,
/// re-encoding and flushing any messages queued while the link was
/// down, and spawns the reader for the inbound direction. Latest
/// connection wins: a previously installed socket is severed (its
/// unflushed messages carry over to the new connection).
///
/// The fresh connection gets a fresh [`FrameEncoder`] — the binary
/// string table is per-connection state, negotiated from empty on both
/// sides, which is exactly why the down-queue holds [`Message`]s and
/// not pre-serialized bytes.
fn install_link(
    shared: &Arc<Shared>,
    owner: BrokerId,
    peer: BrokerId,
    stream: TcpStream,
    expect_generation: Option<u64>,
) -> io::Result<()> {
    let link = ensure_link(shared, owner, peer);
    let reader_stream = stream.try_clone()?;
    let sock = stream.try_clone()?;
    let reader_generation;
    {
        let mut st = link.state.lock();
        // Checked under the link lock: `stop` sets the flag before its
        // sever pass takes these locks, so no connection can slip in
        // after the pass and leave a reader blocked on a live socket.
        if shared.shutting_down.load(Ordering::SeqCst) || shared.down.read().contains(&owner) {
            let _ = sock.shutdown(std::net::Shutdown::Both);
            return Err(io::Error::new(io::ErrorKind::Interrupted, "shutting down"));
        }
        if let Some(expect) = expect_generation {
            if link.generation.load(Ordering::SeqCst) != expect {
                let _ = sock.shutdown(std::net::Shutdown::Both);
                return Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    "link generation moved during dial",
                ));
            }
        }
        let mut queued = match std::mem::replace(&mut *st, LinkState::fresh_down()) {
            LinkState::Up {
                sock: old, pending, ..
            } => {
                let _ = old.shutdown(std::net::Shutdown::Both);
                pending.into()
            }
            LinkState::Down { queued, .. } => queued,
        };
        let mut enc = FrameEncoder::new(shared.options.wire);
        let mut w = BufWriter::new(stream);
        let mut failed = false;
        let mut frames = 0u64;
        for chunk in queued.make_contiguous().chunks(RECONNECT_CHUNK) {
            let frame = Frame::Msg {
                from: owner.0,
                msgs: chunk.to_vec(),
            };
            match enc.encode(&frame) {
                Ok(bytes) => {
                    if w.write_all(bytes).is_err() {
                        failed = true;
                        break;
                    }
                    frames += 1;
                }
                Err(e) => {
                    link.stats
                        .serialize_failures
                        .fetch_add(1, Ordering::Relaxed);
                    debug_assert!(
                        e.0.contains("injected"),
                        "reconnect frame serialize failed on {owner}->{peer}: {e}"
                    );
                    failed = true;
                    break;
                }
            }
        }
        if !failed && w.flush().is_err() {
            failed = true;
        }
        if failed {
            // The fresh socket died mid-flush. Requeue everything —
            // some frames may arrive twice, which the movement
            // protocol's duplicate-tolerant handlers absorb.
            let queued_pubs = count_droppable(&queued);
            *st = LinkState::Down {
                queued,
                queued_pubs,
                redialing: false,
            };
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "reconnect flush failed",
            ));
        }
        link.stats.frames_sent.fetch_add(frames, Ordering::Relaxed);
        if frames > 0 {
            link.stats.flushes.fetch_add(1, Ordering::Relaxed);
        }
        link.stats.connects.fetch_add(1, Ordering::Relaxed);
        // New connection, new generation: retires any reader or dialer
        // of the previous one.
        reader_generation = link.generation.fetch_add(1, Ordering::SeqCst) + 1;
        *st = LinkState::Up {
            w,
            sock,
            enc,
            pending: Vec::new(),
        };
        *link.last_heard.lock() = Instant::now();
    }
    spawn_reader(shared, owner, peer, reader_stream, reader_generation)
}

/// Reads frames from one socket (in the overlay's wire mode) and
/// feeds them to the owning broker's input channel. Exits on EOF,
/// socket error, or a corrupt frame — marking the link down with a
/// reason that distinguishes the three, and counting corruption in
/// the link stats.
fn spawn_reader(
    shared: &Arc<Shared>,
    owner: BrokerId,
    peer: BrokerId,
    stream: TcpStream,
    generation: u64,
) -> io::Result<()> {
    // Snapshot the current input sender: a reader that outlives a
    // kill/restart must not feed the reborn broker from a stale
    // socket's thread (its sends just fail and the thread exits).
    let tx = shared.inputs.read()[&owner].clone();
    let shared2 = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name(format!("tcp-reader-{owner}-{peer}"))
        .spawn(move || {
            let mut reader = BufReader::new(stream);
            let mut dec = FrameDecoder::new(shared2.options.wire);
            let reason = loop {
                match dec.read_frame(&mut reader) {
                    Ok(Some(frame)) => {
                        if let Some(link) = link_of(&shared2, owner, peer) {
                            *link.last_heard.lock() = Instant::now();
                        }
                        match frame {
                            Frame::Ping { .. } => {
                                if let Some(c) = shared2.pings.get(&owner) {
                                    c.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Frame::Msg { from, msgs } => {
                                if tx.send(Input::FromBroker(BrokerId(from), msgs)).is_err() {
                                    break "broker gone".to_string();
                                }
                            }
                        }
                    }
                    Ok(None) => break "peer closed".to_string(),
                    Err(ReadError::Io(e)) => break format!("read error: {e}"),
                    Err(ReadError::Corrupt(e)) => {
                        // Corrupt peer: count it and drop the link —
                        // the codec is desynced, so no later frame on
                        // this connection can be trusted.
                        if let Some(link) = link_of(&shared2, owner, peer) {
                            link.stats.decode_failures.fetch_add(1, Ordering::Relaxed);
                        }
                        break format!("corrupt frame: {e}");
                    }
                }
            };
            if !shared2.shutting_down.load(Ordering::SeqCst) {
                mark_link_down(&shared2, owner, peer, &reason, generation);
            }
        })
        .map_err(|e| io::Error::new(e.kind(), format!("spawn reader for {owner}: {e}")))?;
    shared.aux_threads.lock().push(handle);
    Ok(())
}

/// Accepts connections for one broker forever. A connection is only
/// admitted (handshake answered with `ok`) while the broker process is
/// up; during a kill window dialers keep backing off and retrying.
fn spawn_acceptor(shared: &Arc<Shared>, owner: BrokerId, listener: TcpListener) -> io::Result<()> {
    let shared2 = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name(format!("tcp-accept-{owner}"))
        .spawn(move || loop {
            let Ok((stream, _)) = listener.accept() else {
                return;
            };
            if shared2.shutting_down.load(Ordering::SeqCst) {
                return;
            }
            if stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT)).is_err() {
                continue;
            }
            let mut r = BufReader::new(match stream.try_clone() {
                Ok(s) => s,
                Err(_) => continue,
            });
            let mut line = String::new();
            if r.read_line(&mut line).is_err() {
                continue;
            }
            let mut fields = line.split_whitespace();
            let Some(Ok(peer)) = fields.next().map(|f| f.parse::<u32>().map(BrokerId)) else {
                continue;
            };
            // The mode token guards against a peer (or test harness)
            // framing the stream differently: refuse rather than feed
            // the decoder a foreign format.
            if let Some(tok) = fields.next() {
                if WireMode::from_token(tok) != Some(shared2.options.wire) {
                    continue;
                }
            }
            // Any broker of this overlay may dial in: overlay
            // self-repair creates edges the static topology never had,
            // and the anchor's dial for one must not be refused. A
            // shutdown wake-up (no valid id) still falls out here.
            if peer == owner || !shared2.addrs.contains_key(&peer) {
                continue;
            }
            if shared2.down.read().contains(&owner) {
                continue; // process down: refuse, dialer keeps retrying
            }
            if shared2.suspected.read().contains(&peer) {
                continue; // the overlay already repaired around it
            }
            let ok = (|| -> io::Result<()> {
                let mut w = BufWriter::new(stream.try_clone()?);
                writeln!(w, "ok")?;
                w.flush()?;
                stream.set_read_timeout(None)?;
                Ok(())
            })();
            if ok.is_ok() {
                let _ = install_link(&shared2, owner, peer, stream, None);
            }
        })
        .map_err(|e| io::Error::new(e.kind(), format!("spawn acceptor for {owner}: {e}")))?;
    shared.aux_threads.lock().push(handle);
    Ok(())
}

// ---------------------------------------------------------------------
// Broker main loop
// ---------------------------------------------------------------------

/// Depth of the staged channel between a TCP broker's ingest and apply
/// stages — see [`crate`]'s in-process pipeline for the rationale.
const TCP_PIPELINE_DEPTH: usize = 2;

/// A unit of work handed from the TCP ingest stage to the apply stage.
enum TcpStaged {
    /// An input forwarded verbatim.
    In(Input),
    /// A broker frame whose publications were matched against the
    /// routing state under a read lock, stamped with the routing
    /// version (see [`MobileBroker::prematch`]).
    Prematched(BrokerId, Vec<Message>, PrematchedRoutes),
}

/// The per-broker TCP driver, pipelined like the in-process runtime:
/// an **ingest** stage deserialized frames already (the reader
/// threads) and pre-matches multi-message broker batches under a read
/// lock, while the **apply** stage owns the timer heap and the
/// heartbeat clock and commits every mutation under the write lock.
/// All inputs flow through one bounded channel, preserving the
/// single-threaded loop's FIFO order; a stale pre-match (routing churn
/// between the stages) is detected by its version stamp and recomputed.
fn tcp_broker_main(
    id: BrokerId,
    broker: MobileBroker,
    initial_outs: Vec<Output>,
    rx: Receiver<Input>,
    shared: Arc<Shared>,
) {
    let broker = Arc::new(RwLock::new(broker));
    let (stage_tx, stage_rx) = bounded::<TcpStaged>(TCP_PIPELINE_DEPTH);
    let ingest = {
        let broker = Arc::clone(&broker);
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name(format!("tcp-broker-{id}-ingest"))
            .spawn(move || tcp_ingest_main(broker, rx, stage_tx, shared))
    };
    tcp_apply_main(id, &broker, initial_outs, stage_rx, &shared);
    // The ingest stage exits right after forwarding Shutdown (or on
    // channel disconnect), so this join cannot hang.
    if let Ok(h) = ingest {
        let _ = h.join();
    }
}

/// The TCP ingest stage: read-locked pre-matching, no state mutation.
fn tcp_ingest_main(
    broker: Arc<RwLock<MobileBroker>>,
    rx: Receiver<Input>,
    stage_tx: Sender<TcpStaged>,
    shared: Arc<Shared>,
) {
    for input in rx.iter() {
        // A death notice in the stream marks the victim suspected at
        // the transport layer too, so this broker's own dialer toward
        // it stands down instead of redialing a hole in the overlay.
        if let Input::FromBroker(_, msgs) = &input {
            for m in msgs {
                if let Message::BrokerDeath { dead } = m {
                    shared.suspected.write().insert(*dead);
                }
            }
        }
        let staged = match input {
            Input::FromBroker(from, msgs) if msgs.len() > 1 => {
                let pre = broker.read().prematch(&msgs);
                TcpStaged::Prematched(from, msgs, pre)
            }
            Input::Shutdown => {
                let _ = stage_tx.send(TcpStaged::In(Input::Shutdown));
                return;
            }
            i => TcpStaged::In(i),
        };
        if stage_tx.send(staged).is_err() {
            return; // apply stage gone
        }
    }
}

/// The TCP apply stage: timers, heartbeats, and every broker mutation
/// under the write lock.
fn tcp_apply_main(
    id: BrokerId,
    broker: &RwLock<MobileBroker>,
    initial_outs: Vec<Output>,
    stage_rx: Receiver<TcpStaged>,
    shared: &Arc<Shared>,
) {
    let mut timers: BinaryHeap<Reverse<(Instant, TimerToken)>> = BinaryHeap::new();
    let mut cancelled: BTreeSet<TimerToken> = BTreeSet::new();
    let heartbeat = shared.options.heartbeat_interval;
    let mut next_ping = Instant::now() + heartbeat;
    // Timers re-armed by recovery (or empty on a fresh start).
    dispatch(id, shared, &mut timers, &mut cancelled, initial_outs);
    loop {
        // Fire due timers first.
        let now = Instant::now();
        while let Some(Reverse((deadline, token))) = timers.peek().copied() {
            if deadline > now {
                break;
            }
            timers.pop();
            if cancelled.remove(&token) {
                continue;
            }
            let outs = broker.write().handle_timer(token);
            dispatch(id, shared, &mut timers, &mut cancelled, outs);
        }
        // Heartbeat every live link (the probe doubles as write-path
        // failure detection). The peer set is the *current* link map,
        // not the static topology — overlay repair adds edges.
        if Instant::now() >= next_ping {
            next_ping = Instant::now() + heartbeat;
            let peers: Vec<BrokerId> = shared
                .links
                .read()
                .get(&id)
                .map(|m| m.keys().copied().collect())
                .unwrap_or_default();
            for &n in &peers {
                send_ping(shared, id, n);
            }
            // Acceptor-side failure detector: the dialer of a down
            // link detects a dead peer by redial exhaustion, but the
            // accepting endpoint never dials — it suspects on inbound
            // silence past the failure timeout instead.
            if shared.options.suspicion_after.is_some() {
                for &n in &peers {
                    if shared.suspected.read().contains(&n) {
                        continue;
                    }
                    let Some(link) = link_of(shared, id, n) else {
                        continue;
                    };
                    let is_down = matches!(*link.state.lock(), LinkState::Down { .. });
                    let heard = *link.last_heard.lock();
                    if is_down && heard.elapsed() >= shared.options.failure_timeout {
                        suspect_broker(shared, id, n);
                    }
                }
            }
        }
        // Wait for the next input, timer deadline, or heartbeat tick.
        let deadline = timers
            .peek()
            .map_or(next_ping, |Reverse((d, _))| (*d).min(next_ping));
        let wait = deadline.saturating_duration_since(Instant::now());
        let staged = match stage_rx.recv_timeout(wait) {
            Ok(i) => i,
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
        };
        let outs = match staged {
            TcpStaged::In(Input::Shutdown) => return,
            TcpStaged::In(Input::CreateClient(c)) => {
                broker.write().create_client(c);
                continue;
            }
            TcpStaged::In(Input::FromClient(c, op)) => {
                if broker.read().client(c).is_none() {
                    // The client moved away while the command was in
                    // flight; forward to the current home.
                    let home = shared.registry.read().homes.get(&c).copied();
                    if let Some(h) = home {
                        if h != id {
                            let _ = shared.inputs.read()[&h].send(Input::FromClient(c, op));
                        }
                    }
                    continue;
                }
                broker.write().client_op(c, op)
            }
            TcpStaged::In(Input::FromBroker(from, msgs)) => {
                broker.write().handle_batch(Hop::Broker(from), msgs)
            }
            TcpStaged::Prematched(from, msgs, pre) => {
                broker
                    .write()
                    .handle_batch_prematched(Hop::Broker(from), msgs, pre)
            }
        };
        dispatch(id, shared, &mut timers, &mut cancelled, outs);
    }
}

/// [`Transport`] adapter for one broker step on the TCP overlay: a
/// send batch becomes one wire frame buffered on the link, deliveries
/// and movement events fan out over the client channels, timers stay
/// thread-local. Links written to are remembered in `touched` and
/// flushed **once per `OutputBatch`** by [`dispatch`] — N frames, one
/// flush syscall per destination.
struct TcpFlush<'a> {
    id: BrokerId,
    shared: &'a Arc<Shared>,
    timers: &'a mut BinaryHeap<Reverse<(Instant, TimerToken)>>,
    cancelled: &'a mut BTreeSet<TimerToken>,
    touched: BTreeSet<BrokerId>,
}

impl Transport for TcpFlush<'_> {
    fn send_batch(&mut self, to: BrokerId, msgs: Vec<Message>) {
        send_msgs(self.shared, self.id, to, msgs);
        self.touched.insert(to);
    }

    fn deliver_batch(&mut self, client: ClientId, publications: Vec<PublicationMsg>) {
        let reg = self.shared.registry.read();
        if let Some(tx) = reg.deliveries.get(&client) {
            for p in publications {
                let _ = tx.send(p);
            }
        }
    }

    fn control(&mut self, output: Output) {
        match output {
            Output::SetTimer { token, delay_ns } => {
                self.cancelled.remove(&token);
                self.timers.push(Reverse((
                    Instant::now() + Duration::from_nanos(delay_ns),
                    token,
                )));
            }
            Output::CancelTimer { token } => {
                self.cancelled.insert(token);
            }
            Output::MoveFinished {
                m,
                client,
                committed,
            } => {
                let reg = self.shared.registry.read();
                if let Some(tx) = reg.move_events.get(&client) {
                    let _ = tx.send(MoveOutcome { m, committed });
                }
            }
            Output::ClientArrived { client, .. } => {
                self.shared.registry.write().homes.insert(client, self.id);
            }
            Output::Send { .. } | Output::DeliverToApp { .. } => {
                unreachable!("flush_outputs routes batchable effects to the batch verbs")
            }
        }
    }
}

fn dispatch(
    id: BrokerId,
    shared: &Arc<Shared>,
    timers: &mut BinaryHeap<Reverse<(Instant, TimerToken)>>,
    cancelled: &mut BTreeSet<TimerToken>,
    outs: Vec<Output>,
) {
    let mut flush = TcpFlush {
        id,
        shared,
        timers,
        cancelled,
        touched: BTreeSet::new(),
    };
    flush_outputs(&mut flush, outs);
    let touched = std::mem::take(&mut flush.touched);
    drop(flush);
    for peer in touched {
        flush_link(shared, id, peer);
    }
}

/// Builder for [`TcpNetwork`] — the same `builder().overlay(..)
/// .options(..).start()` surface every driver exposes, plus the
/// TCP-specific transport options and bind-address chooser.
pub struct TcpNetworkBuilder {
    overlay: OverlayBuilder,
    options: NetworkOptions,
    tcp: TcpOptions,
    bind: Box<dyn FnMut(BrokerId) -> String>,
}

impl std::fmt::Debug for TcpNetworkBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpNetworkBuilder")
            .field("overlay", &self.overlay)
            .field("tcp", &self.tcp)
            .finish_non_exhaustive()
    }
}

impl Default for TcpNetworkBuilder {
    fn default() -> Self {
        TcpNetworkBuilder {
            overlay: OverlayBuilder::default(),
            options: NetworkOptions::default(),
            tcp: TcpOptions::default(),
            bind: Box::new(|_| "127.0.0.1:0".to_string()),
        }
    }
}

impl TcpNetworkBuilder {
    /// The overlay: an [`OverlayBuilder`] or a pre-built [`Topology`].
    pub fn overlay(mut self, overlay: impl Into<OverlayBuilder>) -> Self {
        self.overlay = overlay.into();
        self
    }

    /// Per-broker options ([`NetworkOptions`], [`MobileBrokerConfig`],
    /// or a bare `BrokerConfig`).
    pub fn options(mut self, options: impl Into<NetworkOptions>) -> Self {
        self.options = options.into();
        self
    }

    /// Transport options (frame codec, queue bounds, heartbeat and
    /// redial timing).
    pub fn tcp(mut self, options: TcpOptions) -> Self {
        self.tcp = options;
        self
    }

    /// Chooses each broker's listener bind address (default: loopback
    /// on an ephemeral port). Port `0` picks an ephemeral port.
    pub fn bind(mut self, bind_addr: impl FnMut(BrokerId) -> String + 'static) -> Self {
        self.bind = Box::new(bind_addr);
        self
    }

    /// Binds the listeners, connects every overlay edge, and starts
    /// the broker threads.
    ///
    /// # Errors
    ///
    /// Propagates socket bind/connect and thread-spawn errors; any
    /// threads already started are shut down and joined before the
    /// error is returned.
    ///
    /// # Panics
    ///
    /// Panics if the overlay is invalid (empty, disconnected,
    /// duplicate edges) — use `OverlayBuilder::build` directly for the
    /// typed `TopologyError`.
    pub fn start(self) -> io::Result<TcpNetwork> {
        let (topology, par) = self
            .overlay
            .into_parts()
            .expect("invalid overlay passed to TcpNetwork::builder()");
        let mut config = self.options.config;
        if let Some(par) = par {
            config.broker.parallelism = par;
        }
        TcpNetwork::start_inner(topology, config, self.tcp, self.bind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transmob_core::ProtocolKind;

    fn b(i: u32) -> BrokerId {
        BrokerId(i)
    }
    fn c(i: u64) -> ClientId {
        ClientId(i)
    }
    fn range(lo: i64, hi: i64) -> Filter {
        Filter::builder().ge("x", lo).le("x", hi).build()
    }

    #[test]
    fn delivery_over_real_sockets() {
        let net = TcpNetwork::builder()
            .overlay(Topology::chain(4))
            .options(MobileBrokerConfig::reconfig())
            .start()
            .expect("sockets");
        let p = net.create_client(b(1), c(1));
        let s = net.create_client(b(4), c(2));
        p.advertise(range(0, 100));
        s.subscribe(range(0, 100));
        std::thread::sleep(Duration::from_millis(100));
        p.publish(Publication::new().with("x", 7));
        let got = s.recv_timeout(Duration::from_secs(3)).expect("delivery");
        assert_eq!(got.publisher, c(1));
        net.shutdown();
    }

    #[test]
    fn transactional_move_over_real_sockets() {
        let net = TcpNetwork::builder()
            .overlay(Topology::chain(5))
            .options(MobileBrokerConfig::reconfig())
            .start()
            .expect("sockets");
        let p = net.create_client(b(1), c(1));
        let s = net.create_client(b(5), c(2));
        p.advertise(range(0, 100));
        s.subscribe(range(0, 100));
        std::thread::sleep(Duration::from_millis(100));
        assert!(s.move_to(b(2), ProtocolKind::Reconfig, Duration::from_secs(10)));
        assert_eq!(net.home_of(c(2)), Some(b(2)));
        p.publish(Publication::new().with("x", 9));
        assert!(s.recv_timeout(Duration::from_secs(3)).is_some());
        // Exactly once even over the wire.
        std::thread::sleep(Duration::from_millis(100));
        assert!(s.drain().is_empty());
        net.shutdown();
    }

    #[test]
    fn covering_protocol_over_real_sockets() {
        let net = TcpNetwork::builder()
            .overlay(Topology::chain(4))
            .options(MobileBrokerConfig::covering())
            .start()
            .expect("sockets");
        let p = net.create_client(b(1), c(1));
        let s = net.create_client(b(4), c(2));
        p.advertise(range(0, 100));
        s.subscribe(range(0, 100));
        std::thread::sleep(Duration::from_millis(100));
        assert!(s.move_to(b(2), ProtocolKind::Covering, Duration::from_secs(10)));
        p.publish(Publication::new().with("x", 3));
        assert!(s.recv_timeout(Duration::from_secs(3)).is_some());
        net.shutdown();
    }

    #[test]
    fn heartbeats_flow_between_neighbours() {
        let net = TcpNetwork::builder()
            .overlay(Topology::chain(2))
            .options(MobileBrokerConfig::reconfig())
            .start()
            .expect("sockets");
        std::thread::sleep(HEARTBEAT_INTERVAL * 6);
        assert!(net.heartbeats_seen(b(1)) > 0, "no pings reached broker 1");
        assert!(net.heartbeats_seen(b(2)) > 0, "no pings reached broker 2");
        assert!(net.link_up(b(1), b(2)) && net.link_up(b(2), b(1)));
        assert!(net.peer_silence(b(1), b(2)).unwrap() < Duration::from_secs(1));
        net.shutdown();
    }

    #[test]
    fn colliding_port_reports_error_instead_of_aborting() {
        // Occupy a loopback port, then ask the overlay to bind every
        // broker on it: construction must surface the bind error (it
        // used to abort the process via `expect`).
        let occupied = TcpListener::bind("127.0.0.1:0").expect("bind blocker");
        let addr = occupied.local_addr().expect("blocker addr").to_string();
        let err = TcpNetwork::builder()
            .overlay(Topology::chain(3))
            .options(MobileBrokerConfig::reconfig())
            .bind(move |_| addr.clone())
            .start()
            .expect_err("colliding bind must fail");
        assert_eq!(err.kind(), io::ErrorKind::AddrInUse, "{err}");
        assert!(
            err.to_string().contains("bind broker"),
            "error lacks broker context: {err}"
        );
    }

    #[test]
    fn late_collision_cleans_up_earlier_listeners() {
        // First broker binds an ephemeral port, a later one collides:
        // the partial construction must tear down without hanging and
        // a subsequent start on fresh ports must succeed.
        let occupied = TcpListener::bind("127.0.0.1:0").expect("bind blocker");
        let addr = occupied.local_addr().expect("blocker addr").to_string();
        let err = TcpNetwork::builder()
            .overlay(Topology::chain(3))
            .options(MobileBrokerConfig::reconfig())
            .bind(move |b| {
                if b == BrokerId(2) {
                    addr.clone()
                } else {
                    "127.0.0.1:0".to_string()
                }
            })
            .start()
            .expect_err("colliding bind must fail");
        assert_eq!(err.kind(), io::ErrorKind::AddrInUse, "{err}");
        let net = TcpNetwork::builder()
            .overlay(Topology::chain(3))
            .options(MobileBrokerConfig::reconfig())
            .start()
            .expect("fresh ephemeral start succeeds after failed attempt");
        net.shutdown();
    }

    #[test]
    fn drop_is_clean() {
        let net = TcpNetwork::builder()
            .overlay(Topology::chain(2))
            .options(MobileBrokerConfig::reconfig())
            .start()
            .expect("sockets");
        let _c = net.create_client(b(1), c(1));
        drop(net); // must join without hanging
    }

    fn wait_link_up(net: &TcpNetwork, a: BrokerId, z: BrokerId) {
        for _ in 0..200 {
            if net.link_up(a, z) {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("link {a}->{z} never came up");
    }

    fn pub_msg(i: u64) -> Message {
        Message::PubSub(PubSubMsg::Publish(PublicationMsg::new(
            transmob_pubsub::PubId(i),
            c(9),
            Publication::new().with("x", i as i64),
        )))
    }

    /// Satellite bugfix 4: frames written during one batch share a
    /// single flush instead of one syscall each.
    #[test]
    fn batched_frames_share_one_flush() {
        let net = TcpNetwork::builder()
            .overlay(Topology::chain(2))
            .options(MobileBrokerConfig::reconfig())
            .start()
            .expect("sockets");
        wait_link_up(&net, b(1), b(2));
        let before = net.link_stats(b(1), b(2)).expect("stats");
        for i in 0..3 {
            send_msgs(&net.shared, b(1), b(2), vec![pub_msg(i)]);
        }
        flush_link(&net.shared, b(1), b(2));
        let after = net.link_stats(b(1), b(2)).expect("stats");
        let frames = after.frames_sent - before.frames_sent;
        let flushes = after.flushes - before.flushes;
        assert!(frames >= 3, "three frames were written, saw {frames}");
        // Concurrent heartbeats add one frame *and* one flush each, so
        // the batched writes show up as a surplus of frames: 3 frames,
        // at most 1 flush of our own.
        assert!(
            frames - flushes >= 2,
            "3 frames must share one flush: frames={frames} flushes={flushes}"
        );
        net.shutdown();
    }

    /// Satellite bugfix 2: the down-queue high-water mark drops the
    /// oldest *publications*, never subscription-control or movement
    /// frames, and counts every drop.
    #[test]
    fn down_queue_drops_oldest_publications_never_protocol() {
        let stats = LinkStatCells::default();
        let mut queued = VecDeque::new();
        let mut pubs = 0usize;
        let ctl = Message::Move(transmob_core::MoveMsg::Ack {
            m: transmob_pubsub::MoveId(1),
            source: b(1),
            target: b(2),
        });
        enqueue_down(&stats, &mut queued, &mut pubs, (0..4).map(pub_msg), 4);
        assert_eq!(queued.len(), 4);
        assert_eq!(stats.dropped_publications.load(Ordering::Relaxed), 0);
        // A protocol frame pushes past the mark: the oldest publication
        // is dropped, the protocol frame stays.
        enqueue_down(&stats, &mut queued, &mut pubs, [ctl.clone()], 4);
        assert_eq!(queued.len(), 4);
        assert_eq!(pubs, 3);
        assert_eq!(stats.dropped_publications.load(Ordering::Relaxed), 1);
        assert!(queued.iter().any(|m| matches!(m, Message::Move(_))));
        match &queued[0] {
            Message::PubSub(PubSubMsg::Publish(p)) => {
                assert_eq!(p.id, transmob_pubsub::PubId(1), "oldest pub must go first");
            }
            other => panic!("expected a publication at the front, got {other:?}"),
        }
        // A queue of nothing but protocol frames may exceed the mark:
        // correctness-bearing messages are never sacrificed.
        let stats2 = LinkStatCells::default();
        let mut queued2 = VecDeque::new();
        let mut pubs2 = 0usize;
        enqueue_down(
            &stats2,
            &mut queued2,
            &mut pubs2,
            std::iter::repeat_with(|| ctl.clone()).take(6),
            4,
        );
        assert_eq!(queued2.len(), 6);
        assert_eq!(stats2.dropped_publications.load(Ordering::Relaxed), 0);
    }

    /// The redial backoff schedule: capped exponential envelope with
    /// deterministic equal jitter. Pinned as a value so a regression in
    /// the delay sequence (lost cap, lost jitter, non-determinism)
    /// fails loudly.
    #[test]
    fn redial_backoff_is_capped_exponential_with_jitter() {
        let base = Duration::from_millis(25);
        let cap = Duration::from_millis(400);
        for seed in [0u64, 7, 0xdead_beef] {
            for attempt in 0..12 {
                let envelope = base.saturating_mul(1 << attempt.min(20)).min(cap);
                let d = redial_delay(base, cap, attempt, seed);
                assert!(
                    d >= envelope / 2 && d <= envelope,
                    "attempt {attempt} seed {seed}: {d:?} outside [{:?}, {envelope:?}]",
                    envelope / 2
                );
                assert!(d <= cap, "attempt {attempt}: {d:?} exceeds the cap");
                // Deterministic: the same inputs give the same delay.
                assert_eq!(d, redial_delay(base, cap, attempt, seed));
            }
            // Past the doubling range every delay saturates into the
            // cap's upper half.
            let late = redial_delay(base, cap, 30, seed);
            assert!(late >= cap / 2 && late <= cap);
        }
        // Jitter is real: two seeds must not produce identical
        // schedules (decorrelating simultaneous redials is the point).
        let schedule =
            |seed| -> Vec<Duration> { (0..12).map(|a| redial_delay(base, cap, a, seed)).collect() };
        assert_ne!(schedule(1), schedule(2), "jitter must depend on the seed");
    }

    /// Satellite bugfix (churn PR): a reader whose connection was
    /// superseded must not tear down the fresh connection — the
    /// generation guard makes the stale teardown a no-op.
    #[test]
    fn stale_reader_cannot_tear_down_fresh_connection() {
        let net = TcpNetwork::builder()
            .overlay(Topology::chain(2))
            .options(MobileBrokerConfig::reconfig())
            .start()
            .expect("sockets");
        wait_link_up(&net, b(1), b(2));
        let link = link_of(&net.shared, b(1), b(2)).expect("link");
        let current = link.generation.load(Ordering::SeqCst);
        // A teardown on behalf of the previous generation: no-op.
        mark_link_down(&net.shared, b(1), b(2), "stale reader", current - 1);
        assert!(
            net.link_up(b(1), b(2)),
            "stale-generation teardown must not kill the live connection"
        );
        // The same teardown with the live generation takes it down
        // (and the redialer heals it again).
        mark_link_down(&net.shared, b(1), b(2), "live reader", current);
        assert_eq!(
            net.link_stats(b(1), b(2)).expect("stats").down_reason,
            Some("live reader".to_string())
        );
        wait_link_up(&net, b(1), b(2));
        net.shutdown();
    }

    /// Satellite bugfix (churn PR): a dialer stranded in its backoff
    /// sleep across a kill/restart of its own broker stands down
    /// instead of installing a duplicate connection. Pinned via the
    /// per-link connect counter: after the restart churn settles,
    /// exactly one new connection may exist on the edge.
    #[test]
    fn restart_during_active_redial_spawns_no_duplicate_dialer() {
        let net = TcpNetwork::builder()
            .overlay(Topology::chain(2))
            .options(MobileBrokerConfig::reconfig())
            .start()
            .expect("sockets");
        wait_link_up(&net, b(1), b(2));
        // Take the acceptor side down: broker 1's dialer starts its
        // backoff loop (the acceptor refuses while 2 is killed).
        net.kill_broker(b(2));
        for _ in 0..200 {
            if !net.link_up(b(1), b(2)) {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(!net.link_up(b(1), b(2)), "kill must take the link down");
        // Let the dialer's backoff grow toward the cap so it is very
        // likely mid-sleep during the kill/restart below.
        std::thread::sleep(Duration::from_millis(250));
        // Kill and restart the *dialer* while its redial thread is
        // stranded in backoff: the kill bumps the link generation, the
        // restart authorizes a fresh dialer.
        net.kill_broker(b(1));
        net.restart_broker(b(1)).expect("restart dialer");
        net.restart_broker(b(2)).expect("restart acceptor");
        wait_link_up(&net, b(1), b(2));
        let connects_after_heal = net.link_stats(b(1), b(2)).expect("stats").connects;
        // Wait out the redial cap: a stale dialer that survived the
        // kill would wake, dial, and install a duplicate connection in
        // this window. With the generation guard it stands down.
        std::thread::sleep(REDIAL_CAP + Duration::from_millis(200));
        let connects_settled = net.link_stats(b(1), b(2)).expect("stats").connects;
        assert_eq!(
            connects_settled, connects_after_heal,
            "a stale redialer installed a duplicate connection"
        );
        assert!(net.link_up(b(1), b(2)), "the healed link must stay up");
        net.shutdown();
    }

    /// Satellite bugfix 1: a frame that fails to serialize is counted
    /// in the link stats instead of vanishing, and the link survives.
    #[test]
    #[cfg(debug_assertions)]
    fn serialize_failure_is_counted_not_silent() {
        let net = TcpNetwork::builder()
            .overlay(Topology::chain(2))
            .options(MobileBrokerConfig::reconfig())
            .start()
            .expect("sockets");
        wait_link_up(&net, b(1), b(2));
        {
            let link = link_of(&net.shared, b(1), b(2)).expect("link");
            match &mut *link.state.lock() {
                LinkState::Up { enc, .. } => enc.inject_encode_failure(),
                LinkState::Down { .. } => panic!("link down"),
            };
        }
        // Either this send or a concurrent heartbeat consumes the
        // injected failure; both paths must count it.
        send_msgs(&net.shared, b(1), b(2), vec![pub_msg(1)]);
        let mut counted = 0;
        for _ in 0..100 {
            counted = net
                .link_stats(b(1), b(2))
                .expect("stats")
                .serialize_failures;
            if counted > 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(counted, 1, "the injected serialize failure must be counted");
        assert!(
            net.link_up(b(1), b(2)),
            "a serialize failure must not take the link down"
        );
        net.shutdown();
    }
}
