//! Frame codec for the TCP overlay: length-prefixed binary (the
//! default) or newline-delimited JSON (the debug/interop mode and
//! differential oracle).
//!
//! # Binary framing
//!
//! Each frame is `varint(payload_len) ++ payload`. The payload starts
//! with a frame tag (`1` = protocol messages, `2` = heartbeat),
//! followed by the sender id and, for message frames, the message
//! count and each [`Message`] in [`Wire`] encoding. Attribute keys are
//! interned per connection (see `transmob_pubsub::wire`): encoder and
//! decoder each keep a string table that grows as frames flow and is
//! discarded with the connection, so a redialed link always starts
//! from an empty table on both sides.
//!
//! # JSON framing
//!
//! One `serde_json` object per line — the wire format the runtime
//! shipped before the binary codec, kept as a human-readable debug
//! mode (`TRANSMOB_WIRE=json`) and as the oracle the codec proptests
//! differentiate against.
//!
//! # Robustness
//!
//! [`FrameDecoder::read_frame`] never panics on hostile input: a
//! length prefix beyond [`MAX_FRAME`], a truncated payload, an unknown
//! tag, or any structural decode failure surfaces as
//! [`ReadError::Corrupt`] with a reason, distinguished from socket
//! errors ([`ReadError::Io`]) so the transport can count corruption
//! separately and name the cause when it takes a link down.

use std::fmt;
use std::io::{self, BufRead, Read};

use serde::{Deserialize, Serialize};
use transmob_core::Message;
use transmob_pubsub::wire::{StrDecTable, StrEncTable, Wire, WireError, WireReader, WireWriter};

/// Hard cap on one frame's payload size (64 MiB). A corrupt or hostile
/// length prefix beyond this is rejected before any allocation.
pub const MAX_FRAME: usize = 1 << 26;

/// Which framing a `TcpNetwork` puts on its sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireMode {
    /// Length-prefixed binary frames with interned attribute keys.
    #[default]
    Binary,
    /// Newline-delimited JSON (debug/interop; the differential oracle).
    Json,
}

impl WireMode {
    /// Resolves the default mode from the `TRANSMOB_WIRE` environment
    /// variable: `json` selects JSON framing, anything else (or unset)
    /// selects binary.
    pub fn from_env() -> WireMode {
        match std::env::var("TRANSMOB_WIRE") {
            Ok(v) if v.eq_ignore_ascii_case("json") => WireMode::Json,
            _ => WireMode::Binary,
        }
    }

    /// The handshake token naming this mode on the wire.
    pub fn token(self) -> &'static str {
        match self {
            WireMode::Binary => "bin",
            WireMode::Json => "json",
        }
    }

    /// Parses a handshake token.
    pub fn from_token(tok: &str) -> Option<WireMode> {
        match tok {
            "bin" => Some(WireMode::Binary),
            "json" => Some(WireMode::Json),
            _ => None,
        }
    }
}

impl fmt::Display for WireMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// One wire frame of the TCP overlay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Frame {
    /// A batch of protocol messages from a neighbouring broker — one
    /// frame, one write, contents applied in order at the receiver
    /// (per-link FIFO is per frame and within each frame).
    Msg {
        /// Sending broker.
        from: u32,
        /// The coalesced messages, in send order.
        msgs: Vec<Message>,
    },
    /// A heartbeat (failure-detector probe).
    Ping {
        /// Sending broker.
        from: u32,
    },
}

const TAG_MSG: u8 = 1;
const TAG_PING: u8 = 2;

/// A frame-read failure, separating transport death from corruption.
#[derive(Debug)]
pub enum ReadError {
    /// The socket failed; the bytes that did arrive were well-formed.
    Io(io::Error),
    /// The bytes arrived but do not form a valid frame.
    Corrupt(WireError),
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "read error: {e}"),
            ReadError::Corrupt(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ReadError {}

/// Per-connection frame encoder. Owns the outgoing half of the string
/// table, so it must live and die with one connection: a reconnect
/// gets a fresh encoder (and the peer a fresh decoder).
#[derive(Debug)]
pub struct FrameEncoder {
    mode: WireMode,
    strs: StrEncTable,
    payload: Vec<u8>,
    out: Vec<u8>,
    /// Debug-build oracle: a mirror of the peer's decoder, fed every
    /// encoded frame in order, asserting that what we put on the wire
    /// decodes back to exactly the frame we meant to send.
    #[cfg(debug_assertions)]
    mirror: StrDecTable,
    /// Debug-build fault injection ([`FrameEncoder::inject_encode_failure`]).
    #[cfg(debug_assertions)]
    fail_next: bool,
}

impl FrameEncoder {
    /// A fresh encoder for a new connection in `mode`.
    pub fn new(mode: WireMode) -> FrameEncoder {
        FrameEncoder {
            mode,
            strs: StrEncTable::new(),
            payload: Vec::new(),
            out: Vec::new(),
            #[cfg(debug_assertions)]
            mirror: StrDecTable::new(),
            #[cfg(debug_assertions)]
            fail_next: false,
        }
    }

    /// Test hook (debug builds only): makes the next [`FrameEncoder::encode`]
    /// call fail with an error marked `injected`, so the transport's
    /// serialize-failure accounting can be exercised — the vendored
    /// JSON serializer is total over the protocol types, and binary
    /// encoding is total by construction, so a real failure cannot be
    /// provoked from outside.
    #[cfg(debug_assertions)]
    pub fn inject_encode_failure(&mut self) {
        self.fail_next = true;
    }

    /// The framing this encoder produces.
    pub fn mode(&self) -> WireMode {
        self.mode
    }

    /// Number of attribute keys interned so far on this connection.
    pub fn interned(&self) -> usize {
        self.strs.len()
    }

    /// Encodes `frame`, returning the complete on-wire bytes (length
    /// prefix included for binary, trailing newline for JSON). The
    /// returned slice borrows the encoder's internal buffer and is
    /// valid until the next `encode` call.
    ///
    /// # Errors
    ///
    /// Binary encoding is total; only the JSON mode can fail (a
    /// serializer error), and the caller must surface that — never
    /// drop the frame silently.
    pub fn encode(&mut self, frame: &Frame) -> Result<&[u8], WireError> {
        #[cfg(debug_assertions)]
        if self.fail_next {
            self.fail_next = false;
            return Err(WireError("injected encode failure".into()));
        }
        self.out.clear();
        match self.mode {
            WireMode::Json => {
                let line = serde_json::to_string(frame)
                    .map_err(|e| WireError(format!("json serialize failed: {e}")))?;
                self.out.extend_from_slice(line.as_bytes());
                self.out.push(b'\n');
            }
            WireMode::Binary => {
                self.payload.clear();
                let mut w = WireWriter::new(&mut self.payload, &mut self.strs);
                match frame {
                    Frame::Msg { from, msgs } => {
                        w.byte(TAG_MSG);
                        w.varint(u64::from(*from));
                        msgs.enc(&mut w);
                    }
                    Frame::Ping { from } => {
                        w.byte(TAG_PING);
                        w.varint(u64::from(*from));
                    }
                }
                let mut prefix = [0u8; 10];
                let n = write_varint(&mut prefix, self.payload.len() as u64);
                self.out.extend_from_slice(&prefix[..n]);
                self.out.extend_from_slice(&self.payload);
                #[cfg(debug_assertions)]
                {
                    // The mirror consumes the same string-table state
                    // stream the real peer will, so it must see every
                    // frame exactly once, in order — which it does:
                    // encode() is called once per frame under the link
                    // lock.
                    let decoded = decode_payload(&self.payload, &mut self.mirror)
                        .expect("debug oracle: binary frame does not decode");
                    assert_eq!(
                        &decoded, frame,
                        "debug oracle: binary round-trip changed the frame"
                    );
                }
            }
        }
        Ok(&self.out)
    }
}

/// Per-connection frame decoder. Owns the incoming half of the string
/// table; a reconnect gets a fresh decoder.
#[derive(Debug)]
pub struct FrameDecoder {
    mode: WireMode,
    strs: StrDecTable,
    payload: Vec<u8>,
    line: String,
}

impl FrameDecoder {
    /// A fresh decoder for a new connection in `mode`.
    pub fn new(mode: WireMode) -> FrameDecoder {
        FrameDecoder {
            mode,
            strs: StrDecTable::new(),
            payload: Vec::new(),
            line: String::new(),
        }
    }

    /// The framing this decoder expects.
    pub fn mode(&self) -> WireMode {
        self.mode
    }

    /// Reads one frame. `Ok(None)` is clean EOF at a frame boundary;
    /// EOF inside a frame is corruption (the peer died mid-write or
    /// the stream desynced).
    pub fn read_frame(&mut self, r: &mut impl BufRead) -> Result<Option<Frame>, ReadError> {
        match self.mode {
            WireMode::Json => {
                self.line.clear();
                match r.read_line(&mut self.line) {
                    Ok(0) => Ok(None),
                    Ok(_) => serde_json::from_str::<Frame>(self.line.trim_end())
                        .map(Some)
                        .map_err(|e| ReadError::Corrupt(WireError(format!("json frame: {e}")))),
                    Err(e) => Err(ReadError::Io(e)),
                }
            }
            WireMode::Binary => {
                let len = match read_varint(r) {
                    Ok(Some(len)) => len,
                    Ok(None) => return Ok(None),
                    Err(e) => return Err(e),
                };
                if len > MAX_FRAME as u64 {
                    return Err(ReadError::Corrupt(WireError(format!(
                        "frame length {len} exceeds cap {MAX_FRAME}"
                    ))));
                }
                self.payload.resize(len as usize, 0);
                if let Err(e) = r.read_exact(&mut self.payload) {
                    return Err(if e.kind() == io::ErrorKind::UnexpectedEof {
                        ReadError::Corrupt(WireError("eof inside frame payload".into()))
                    } else {
                        ReadError::Io(e)
                    });
                }
                decode_payload(&self.payload, &mut self.strs)
                    .map(Some)
                    .map_err(ReadError::Corrupt)
            }
        }
    }

    /// Decodes one binary frame payload (no length prefix) against
    /// this connection's string table. Exposed for the codec tests.
    pub fn decode_payload(&mut self, payload: &[u8]) -> Result<Frame, WireError> {
        decode_payload(payload, &mut self.strs)
    }
}

fn decode_payload(payload: &[u8], strs: &mut StrDecTable) -> Result<Frame, WireError> {
    let mut r = WireReader::new(payload, strs);
    let frame = match r.byte()? {
        TAG_MSG => {
            let from = u32::dec(&mut r)?;
            let msgs = Vec::<Message>::dec(&mut r)?;
            Frame::Msg { from, msgs }
        }
        TAG_PING => Frame::Ping {
            from: u32::dec(&mut r)?,
        },
        t => return Err(WireError(format!("unknown frame tag {t}"))),
    };
    if !r.is_exhausted() {
        return Err(WireError(format!(
            "{} trailing bytes after frame",
            r.remaining()
        )));
    }
    Ok(frame)
}

fn write_varint(buf: &mut [u8; 10], mut v: u64) -> usize {
    let mut n = 0;
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf[n] = b;
            return n + 1;
        }
        buf[n] = b | 0x80;
        n += 1;
    }
}

/// Reads a length-prefix varint byte-by-byte. `Ok(None)` = EOF before
/// the first byte (a clean close); EOF mid-varint is corruption.
fn read_varint(r: &mut impl Read) -> Result<Option<u64>, ReadError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    let mut first = true;
    loop {
        let mut one = [0u8; 1];
        match r.read(&mut one) {
            Ok(0) => {
                return if first {
                    Ok(None)
                } else {
                    Err(ReadError::Corrupt(WireError(
                        "eof inside frame length prefix".into(),
                    )))
                };
            }
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ReadError::Io(e)),
        }
        first = false;
        let b = one[0];
        if shift == 63 && b > 1 {
            return Err(ReadError::Corrupt(WireError(
                "length prefix overflow".into(),
            )));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(Some(v));
        }
        shift += 7;
        if shift > 63 {
            return Err(ReadError::Corrupt(WireError(
                "length prefix longer than 10 bytes".into(),
            )));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use transmob_broker::PubSubMsg;
    use transmob_pubsub::{ClientId, PubId, Publication, PublicationMsg};

    fn pub_frame(from: u32, n: u64) -> Frame {
        let msgs = (0..n)
            .map(|i| {
                Message::PubSub(PubSubMsg::Publish(PublicationMsg::new(
                    PubId(i),
                    ClientId(1),
                    Publication::new()
                        .with("price", i as i64)
                        .with("sym", "IBM"),
                )))
            })
            .collect();
        Frame::Msg { from, msgs }
    }

    #[test]
    fn binary_stream_round_trips_multiple_frames() {
        let mut enc = FrameEncoder::new(WireMode::Binary);
        let frames = vec![pub_frame(1, 3), Frame::Ping { from: 1 }, pub_frame(1, 5)];
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(enc.encode(f).unwrap());
        }
        let mut dec = FrameDecoder::new(WireMode::Binary);
        let mut cur = Cursor::new(wire);
        for f in &frames {
            assert_eq!(&dec.read_frame(&mut cur).unwrap().unwrap(), f);
        }
        assert!(dec.read_frame(&mut cur).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn json_stream_round_trips_multiple_frames() {
        let mut enc = FrameEncoder::new(WireMode::Json);
        let frames = vec![pub_frame(2, 2), Frame::Ping { from: 2 }];
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(enc.encode(f).unwrap());
        }
        let mut dec = FrameDecoder::new(WireMode::Json);
        let mut cur = Cursor::new(wire);
        for f in &frames {
            assert_eq!(&dec.read_frame(&mut cur).unwrap().unwrap(), f);
        }
        assert!(dec.read_frame(&mut cur).unwrap().is_none());
    }

    #[test]
    fn interning_makes_later_frames_smaller() {
        let mut enc = FrameEncoder::new(WireMode::Binary);
        let first = enc.encode(&pub_frame(1, 4)).unwrap().len();
        let second = enc.encode(&pub_frame(1, 4)).unwrap().len();
        assert!(
            second < first,
            "second frame ({second} B) should drop the raw keys of the first ({first} B)"
        );
        assert_eq!(enc.interned(), 2);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocation() {
        let mut dec = FrameDecoder::new(WireMode::Binary);
        // varint(2^40) followed by nothing.
        let mut cur = Cursor::new(vec![0x80, 0x80, 0x80, 0x80, 0x80, 0x20]);
        match dec.read_frame(&mut cur) {
            Err(ReadError::Corrupt(e)) => assert!(e.0.contains("exceeds cap"), "{e}"),
            other => panic!("expected corrupt, got {other:?}"),
        }
    }

    #[test]
    fn eof_mid_frame_is_corruption_not_clean_close() {
        let mut enc = FrameEncoder::new(WireMode::Binary);
        let bytes = enc.encode(&pub_frame(1, 2)).unwrap().to_vec();
        for cut in 1..bytes.len() {
            let mut dec = FrameDecoder::new(WireMode::Binary);
            let mut cur = Cursor::new(bytes[..cut].to_vec());
            match dec.read_frame(&mut cur) {
                Err(ReadError::Corrupt(_)) => {}
                other => panic!("cut at {cut}: expected corrupt, got {other:?}"),
            }
        }
    }

    #[test]
    fn garbage_payload_errors_cleanly() {
        let mut dec = FrameDecoder::new(WireMode::Binary);
        // length 4, then a bogus tag + noise.
        let mut cur = Cursor::new(vec![4, 0xee, 0x01, 0x02, 0x03]);
        assert!(matches!(
            dec.read_frame(&mut cur),
            Err(ReadError::Corrupt(_))
        ));
        // A valid tag but trailing junk after the frame body.
        let mut cur = Cursor::new(vec![3, TAG_PING, 1, 0xaa]);
        let mut dec = FrameDecoder::new(WireMode::Binary);
        assert!(matches!(
            dec.read_frame(&mut cur),
            Err(ReadError::Corrupt(_))
        ));
    }

    #[test]
    fn json_garbage_line_is_corruption() {
        let mut dec = FrameDecoder::new(WireMode::Json);
        let mut cur = Cursor::new(b"this is not json\n".to_vec());
        assert!(matches!(
            dec.read_frame(&mut cur),
            Err(ReadError::Corrupt(_))
        ));
    }

    #[test]
    fn fresh_decoder_rejects_interned_backrefs_from_old_connection() {
        // Two frames from one encoder; a decoder that only sees the
        // second (as after a redial with a stale stream) must error,
        // not resolve ids against a table it never built.
        let mut enc = FrameEncoder::new(WireMode::Binary);
        let _ = enc.encode(&pub_frame(1, 2)).unwrap();
        let second = enc.encode(&pub_frame(1, 2)).unwrap().to_vec();
        let mut dec = FrameDecoder::new(WireMode::Binary);
        let mut cur = Cursor::new(second);
        assert!(matches!(
            dec.read_frame(&mut cur),
            Err(ReadError::Corrupt(_))
        ));
    }
}
