//! # transmob-runtime
//!
//! A *threaded deployment* of the transmob stack: every broker of the
//! overlay runs as an OS thread hosting the same
//! [`MobileBroker`] state machine the
//! simulator drives, exchanging messages over crossbeam channels. This
//! is the "real system" face of the reproduction: the examples and the
//! integration tests run the movement protocols over genuinely
//! concurrent brokers with wall-clock protocol timers.
//!
//! The entry point is [`Network`]; clients are driven through
//! [`Client`] handles:
//!
//! ```
//! use transmob_runtime::Network;
//! use transmob_broker::Topology;
//! use transmob_core::{MobileBrokerConfig, ProtocolKind};
//! use transmob_pubsub::{BrokerId, ClientId, Filter, Publication};
//! use std::time::Duration;
//!
//! let net = Network::builder()
//!     .overlay(Topology::chain(3))
//!     .options(MobileBrokerConfig::reconfig())
//!     .start();
//! let publisher = net.create_client(BrokerId(1), ClientId(1));
//! let subscriber = net.create_client(BrokerId(3), ClientId(2));
//! publisher.advertise(Filter::builder().ge("x", 0).build());
//! subscriber.subscribe(Filter::builder().ge("x", 0).build());
//! std::thread::sleep(Duration::from_millis(50));
//! publisher.publish(Publication::new().with("x", 7));
//! let n = subscriber.recv_timeout(Duration::from_secs(2)).expect("delivery");
//! assert_eq!(n.publisher, ClientId(1));
//! // Move the subscriber; deliveries continue at the new broker.
//! assert!(subscriber.move_to(BrokerId(1), ProtocolKind::Reconfig, Duration::from_secs(5)));
//! publisher.publish(Publication::new().with("x", 8));
//! assert!(subscriber.recv_timeout(Duration::from_secs(2)).is_some());
//! net.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
pub mod tcp;

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::RwLock;
use transmob_broker::{Hop, OverlayBuilder, PrematchedRoutes, Topology};
use transmob_core::transport::{flush_outputs, Transport};
use transmob_core::{
    ClientOp, Message, MobileBroker, MobileBrokerConfig, NetworkOptions, Output, ProtocolKind,
    TimerToken,
};
use transmob_pubsub::{BrokerId, ClientId, Filter, MoveId, Publication, PublicationMsg};

/// The outcome of a movement, delivered to the issuing client's handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoveOutcome {
    /// The movement transaction id.
    pub m: MoveId,
    /// Whether the client now runs at the target.
    pub committed: bool,
}

enum Envelope {
    FromBroker(BrokerId, Vec<Message>),
    FromClient(ClientId, ClientOp),
    CreateClient(ClientId),
    Shutdown,
}

impl fmt::Debug for Envelope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Envelope::FromBroker(b, m) => write!(f, "FromBroker({b}, {} msgs)", m.len()),
            Envelope::FromClient(c, _) => write!(f, "FromClient({c}, ..)"),
            Envelope::CreateClient(c) => write!(f, "CreateClient({c})"),
            Envelope::Shutdown => f.write_str("Shutdown"),
        }
    }
}

#[derive(Debug, Default)]
struct Registry {
    homes: BTreeMap<ClientId, BrokerId>,
    deliveries: BTreeMap<ClientId, Sender<PublicationMsg>>,
    move_events: BTreeMap<ClientId, Sender<MoveOutcome>>,
}

#[derive(Debug)]
struct Shared {
    topology: Arc<Topology>,
    senders: BTreeMap<BrokerId, Sender<Envelope>>,
    registry: RwLock<Registry>,
}

/// A running broker network: one thread per broker.
///
/// Shut it down explicitly with [`Network::shutdown`]; dropping the
/// handle also stops the threads (without blocking indefinitely on a
/// healthy network).
#[derive(Debug)]
pub struct Network {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl Network {
    /// The builder entry point: `Network::builder().overlay(..)
    /// .options(..).start()`.
    pub fn builder() -> NetworkBuilder {
        NetworkBuilder::default()
    }

    /// Starts one broker thread per topology node, all configured with
    /// `config`.
    #[deprecated(
        since = "0.2.0",
        note = "use Network::builder().overlay(..).options(..).start()"
    )]
    pub fn start(topology: Topology, config: MobileBrokerConfig) -> Self {
        Self::from_parts(topology, config)
    }

    fn from_parts(topology: Topology, config: MobileBrokerConfig) -> Self {
        let topology = Arc::new(topology);
        let mut senders = BTreeMap::new();
        let mut receivers = BTreeMap::new();
        for b in topology.brokers() {
            let (tx, rx) = unbounded();
            senders.insert(b, tx);
            receivers.insert(b, rx);
        }
        let shared = Arc::new(Shared {
            topology: Arc::clone(&topology),
            senders,
            registry: RwLock::new(Registry::default()),
        });
        let handles = receivers
            .into_iter()
            .map(|(b, rx)| {
                let shared = Arc::clone(&shared);
                let config = config.clone();
                let topology = Arc::clone(&topology);
                std::thread::Builder::new()
                    .name(format!("broker-{b}"))
                    .spawn(move || broker_main(b, topology, config, rx, shared))
                    .expect("spawn broker thread")
            })
            .collect();
        Network { shared, handles }
    }

    /// The overlay topology.
    pub fn topology(&self) -> &Topology {
        &self.shared.topology
    }

    /// Creates (attaches and starts) a client at `broker` and returns
    /// its handle.
    ///
    /// # Panics
    ///
    /// Panics if `broker` is not in the topology or the client id is
    /// already in use.
    pub fn create_client(&self, broker: BrokerId, id: ClientId) -> Client {
        let (dtx, drx) = unbounded();
        let (mtx, mrx) = unbounded();
        {
            let mut reg = self.shared.registry.write();
            assert!(
                !reg.homes.contains_key(&id),
                "client id {id} already in use"
            );
            reg.homes.insert(id, broker);
            reg.deliveries.insert(id, dtx);
            reg.move_events.insert(id, mtx);
        }
        self.shared.senders[&broker]
            .send(Envelope::CreateClient(id))
            .expect("broker thread alive");
        Client {
            id,
            shared: Arc::clone(&self.shared),
            deliveries: drx,
            moves: mrx,
        }
    }

    /// The broker currently hosting `client` (its command target).
    pub fn home_of(&self, client: ClientId) -> Option<BrokerId> {
        self.shared.registry.read().homes.get(&client).copied()
    }

    /// Stops all broker threads and waits for them to finish.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        for tx in self.shared.senders.values() {
            let _ = tx.send(Envelope::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Network {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// A handle to a client hosted somewhere in the network. Commands are
/// routed to whatever broker currently hosts the client; notifications
/// arrive on the handle's delivery channel.
#[derive(Debug)]
pub struct Client {
    id: ClientId,
    shared: Arc<Shared>,
    deliveries: Receiver<PublicationMsg>,
    moves: Receiver<MoveOutcome>,
}

impl Client {
    /// The client id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    fn send_op(&self, op: ClientOp) {
        let home = self
            .shared
            .registry
            .read()
            .homes
            .get(&self.id)
            .copied()
            .expect("client registered");
        let _ = self.shared.senders[&home].send(Envelope::FromClient(self.id, op));
    }

    /// Issues a subscription.
    pub fn subscribe(&self, filter: Filter) {
        self.send_op(ClientOp::Subscribe(filter));
    }

    /// Withdraws the subscription with client-local sequence `seq`
    /// (subscriptions are numbered 0, 1, ... in issue order).
    pub fn unsubscribe(&self, seq: u32) {
        self.send_op(ClientOp::Unsubscribe(seq));
    }

    /// Issues an advertisement.
    pub fn advertise(&self, filter: Filter) {
        self.send_op(ClientOp::Advertise(filter));
    }

    /// Withdraws the advertisement with client-local sequence `seq`.
    pub fn unadvertise(&self, seq: u32) {
        self.send_op(ClientOp::Unadvertise(seq));
    }

    /// Publishes a publication.
    pub fn publish(&self, content: Publication) {
        self.send_op(ClientOp::Publish(content));
    }

    /// Application-level pause: notifications buffer at the broker and
    /// commands queue until [`Client::resume`].
    pub fn pause(&self) {
        self.send_op(ClientOp::Pause);
    }

    /// Resumes from an application-level pause.
    pub fn resume(&self) {
        self.send_op(ClientOp::Resume);
    }

    /// Requests a movement and waits up to `timeout` for it to finish.
    /// Returns `true` if the movement committed (the client now runs
    /// at `target`).
    pub fn move_to(&self, target: BrokerId, protocol: ProtocolKind, timeout: Duration) -> bool {
        self.send_op(ClientOp::MoveTo(target, protocol));
        match self.moves.recv_timeout(timeout) {
            Ok(outcome) => outcome.committed,
            Err(_) => false,
        }
    }

    /// Requests a movement without waiting (the outcome arrives via
    /// [`Client::next_move_outcome`]).
    pub fn move_to_async(&self, target: BrokerId, protocol: ProtocolKind) {
        self.send_op(ClientOp::MoveTo(target, protocol));
    }

    /// Waits for the next movement outcome.
    pub fn next_move_outcome(&self, timeout: Duration) -> Option<MoveOutcome> {
        self.moves.recv_timeout(timeout).ok()
    }

    /// Receives the next notification, waiting up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<PublicationMsg> {
        self.deliveries.recv_timeout(timeout).ok()
    }

    /// Receives a notification if one is already queued.
    pub fn try_recv(&self) -> Option<PublicationMsg> {
        self.deliveries.try_recv().ok()
    }

    /// Drains all currently queued notifications.
    pub fn drain(&self) -> Vec<PublicationMsg> {
        let mut out = Vec::new();
        while let Ok(p) = self.deliveries.try_recv() {
            out.push(p);
        }
        out
    }
}

/// Depth of the staged channel between a broker's ingest and apply
/// stages. Small on purpose: it bounds how stale a pre-computed match
/// can get (staleness is correctness-neutral — the apply stage
/// re-matches — but wasted work) while still letting the ingest stage
/// decode and match the next batch concurrently with the apply stage.
const PIPELINE_DEPTH: usize = 2;

/// A unit of work handed from the ingest stage to the apply stage.
enum Staged {
    /// An envelope forwarded verbatim.
    Env(Envelope),
    /// A broker batch whose publications were already matched against
    /// the routing state under a read lock, stamped with the routing
    /// version (see [`MobileBroker::prematch`]).
    Prematched(BrokerId, Vec<Message>, PrematchedRoutes),
}

/// The per-broker *pipelined* driver: two threads per broker.
///
/// - The **ingest** stage (this function spawns it) pulls envelopes
///   off the network channel and, for multi-message broker batches,
///   pre-computes the publication routes under a *read* lock of the
///   broker — concurrent with the apply stage committing the previous
///   batch.
/// - The **apply** stage (this function) owns the timer heap, takes
///   the *write* lock for every state mutation, and consumes the
///   pre-computed routes when their version stamp still matches;
///   routing-state churn between the stages (a movement commit, a
///   subscription) just invalidates the stamp and the routes are
///   recomputed under the write lock.
///
/// All envelopes — prematched or not — flow through the same bounded
/// channel, so per-broker FIFO ordering is preserved exactly as in the
/// single-threaded loop.
fn broker_main(
    id: BrokerId,
    topology: Arc<Topology>,
    config: MobileBrokerConfig,
    rx: Receiver<Envelope>,
    shared: Arc<Shared>,
) {
    let broker = Arc::new(RwLock::new(MobileBroker::new(id, topology, config)));
    let (stage_tx, stage_rx) = bounded::<Staged>(PIPELINE_DEPTH);
    let ingest = {
        let broker = Arc::clone(&broker);
        std::thread::Builder::new()
            .name(format!("broker-{id}-ingest"))
            .spawn(move || ingest_main(broker, rx, stage_tx))
            .expect("spawn ingest thread")
    };
    apply_main(id, &broker, stage_rx, &shared);
    // `apply_main` only returns once the staged channel delivered
    // Shutdown or disconnected, and the ingest stage stops right after
    // forwarding Shutdown, so this join cannot hang on a healthy
    // network.
    let _ = ingest.join();
}

/// The ingest stage: read-locked pre-matching, no state mutation.
fn ingest_main(
    broker: Arc<RwLock<MobileBroker>>,
    rx: Receiver<Envelope>,
    stage_tx: Sender<Staged>,
) {
    for envelope in rx.iter() {
        let staged = match envelope {
            Envelope::FromBroker(from, msgs) if msgs.len() > 1 => {
                let pre = broker.read().prematch(&msgs);
                Staged::Prematched(from, msgs, pre)
            }
            Envelope::Shutdown => {
                let _ = stage_tx.send(Staged::Env(Envelope::Shutdown));
                return;
            }
            e => Staged::Env(e),
        };
        if stage_tx.send(staged).is_err() {
            return; // apply stage gone
        }
    }
}

/// The apply stage: owns the timer heap; every broker mutation runs
/// under the write lock.
fn apply_main(
    id: BrokerId,
    broker: &RwLock<MobileBroker>,
    stage_rx: Receiver<Staged>,
    shared: &Shared,
) {
    let mut timers: BinaryHeap<Reverse<(Instant, TimerToken)>> = BinaryHeap::new();
    let mut cancelled: BTreeSet<TimerToken> = BTreeSet::new();
    loop {
        // Fire due timers first.
        let now = Instant::now();
        while let Some(Reverse((deadline, token))) = timers.peek().copied() {
            if deadline > now {
                break;
            }
            timers.pop();
            if cancelled.remove(&token) {
                continue;
            }
            let outs = broker.write().handle_timer(token);
            dispatch(id, shared, &mut timers, &mut cancelled, outs);
        }
        // Wait for the next staged item or the next timer deadline.
        let staged = match timers.peek() {
            Some(Reverse((deadline, _))) => {
                let wait = deadline.saturating_duration_since(Instant::now());
                match stage_rx.recv_timeout(wait) {
                    Ok(e) => e,
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                }
            }
            None => match stage_rx.recv() {
                Ok(e) => e,
                Err(_) => return,
            },
        };
        match staged {
            Staged::Prematched(from, msgs, pre) => {
                let outs = broker
                    .write()
                    .handle_batch_prematched(Hop::Broker(from), msgs, pre);
                dispatch(id, shared, &mut timers, &mut cancelled, outs);
            }
            Staged::Env(Envelope::Shutdown) => return,
            Staged::Env(Envelope::CreateClient(c)) => broker.write().create_client(c),
            Staged::Env(Envelope::FromClient(c, op)) => {
                if broker.read().client(c).is_none() {
                    // The client moved away while the command was in
                    // flight; forward it to the current home (the
                    // registry is updated before the source cleans up,
                    // so re-resolution always progresses).
                    let home = shared.registry.read().homes.get(&c).copied();
                    match home {
                        Some(h) if h != id => {
                            let _ = shared.senders[&h].send(Envelope::FromClient(c, op));
                        }
                        _ => {} // client gone entirely: drop
                    }
                    continue;
                }
                let outs = broker.write().client_op(c, op);
                dispatch(id, shared, &mut timers, &mut cancelled, outs);
            }
            Staged::Env(Envelope::FromBroker(from, msgs)) => {
                let outs = broker.write().handle_batch(Hop::Broker(from), msgs);
                dispatch(id, shared, &mut timers, &mut cancelled, outs);
            }
        }
    }
}

fn dispatch(
    id: BrokerId,
    shared: &Shared,
    timers: &mut BinaryHeap<Reverse<(Instant, TimerToken)>>,
    cancelled: &mut BTreeSet<TimerToken>,
    outs: Vec<Output>,
) {
    let mut flush = ChannelFlush {
        id,
        shared,
        timers,
        cancelled,
    };
    flush_outputs(&mut flush, outs);
}

/// [`Transport`] over the in-process crossbeam channels: consecutive
/// sends to the same neighbor ride one [`Envelope::FromBroker`].
struct ChannelFlush<'a> {
    id: BrokerId,
    shared: &'a Shared,
    timers: &'a mut BinaryHeap<Reverse<(Instant, TimerToken)>>,
    cancelled: &'a mut BTreeSet<TimerToken>,
}

impl Transport for ChannelFlush<'_> {
    fn send_batch(&mut self, to: BrokerId, msgs: Vec<Message>) {
        let _ = self.shared.senders[&to].send(Envelope::FromBroker(self.id, msgs));
    }

    fn deliver_batch(&mut self, client: ClientId, publications: Vec<PublicationMsg>) {
        let reg = self.shared.registry.read();
        if let Some(tx) = reg.deliveries.get(&client) {
            for p in publications {
                let _ = tx.send(p);
            }
        }
    }

    fn control(&mut self, output: Output) {
        match output {
            Output::SetTimer { token, delay_ns } => {
                self.cancelled.remove(&token);
                self.timers.push(Reverse((
                    Instant::now() + Duration::from_nanos(delay_ns),
                    token,
                )));
            }
            Output::CancelTimer { token } => {
                self.cancelled.insert(token);
            }
            Output::MoveFinished {
                m,
                client,
                committed,
            } => {
                // The home registry was already flipped by the target's
                // `ClientArrived` for committed moves; here we only
                // signal the outcome to the client handle.
                let reg = self.shared.registry.read();
                if let Some(tx) = reg.move_events.get(&client) {
                    let _ = tx.send(MoveOutcome { m, committed });
                }
            }
            Output::ClientArrived { m: _, client } => {
                // Commands issued from now on route to the new home.
                let mut reg = self.shared.registry.write();
                reg.homes.insert(client, self.id);
            }
            Output::Send { .. } | Output::DeliverToApp { .. } => {
                unreachable!("flush_outputs routes batchable effects to the batch verbs")
            }
        }
    }
}

/// Builder for [`Network`] — the same `builder().overlay(..)
/// .options(..).start()` surface every driver exposes.
#[derive(Debug, Default)]
pub struct NetworkBuilder {
    overlay: OverlayBuilder,
    options: NetworkOptions,
}

impl NetworkBuilder {
    /// The overlay: an [`OverlayBuilder`] or a pre-built [`Topology`].
    pub fn overlay(mut self, overlay: impl Into<OverlayBuilder>) -> Self {
        self.overlay = overlay.into();
        self
    }

    /// Per-broker options ([`NetworkOptions`], [`MobileBrokerConfig`],
    /// or a bare `BrokerConfig`).
    pub fn options(mut self, options: impl Into<NetworkOptions>) -> Self {
        self.options = options.into();
        self
    }

    /// Starts the broker threads.
    ///
    /// # Panics
    ///
    /// Panics if the overlay is invalid (empty, disconnected,
    /// duplicate edges) — use [`OverlayBuilder::build`] directly for
    /// the typed `TopologyError`.
    pub fn start(self) -> Network {
        let (topology, par) = self
            .overlay
            .into_parts()
            .expect("invalid overlay passed to Network::builder()");
        let mut config = self.options.config;
        if let Some(par) = par {
            config.broker.parallelism = par;
        }
        Network::from_parts(topology, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u32) -> BrokerId {
        BrokerId(i)
    }
    fn c(i: u64) -> ClientId {
        ClientId(i)
    }
    fn range(lo: i64, hi: i64) -> Filter {
        Filter::builder().ge("x", lo).le("x", hi).build()
    }

    #[test]
    fn end_to_end_delivery() {
        let net = Network::builder()
            .overlay(Topology::chain(4))
            .options(MobileBrokerConfig::reconfig())
            .start();
        let p = net.create_client(b(1), c(1));
        let s = net.create_client(b(4), c(2));
        p.advertise(range(0, 100));
        s.subscribe(range(0, 100));
        std::thread::sleep(Duration::from_millis(50));
        p.publish(Publication::new().with("x", 5));
        let got = s.recv_timeout(Duration::from_secs(2)).expect("delivery");
        assert_eq!(got.publisher, c(1));
        net.shutdown();
    }

    #[test]
    fn reconfig_move_over_threads() {
        let net = Network::builder()
            .overlay(Topology::chain(5))
            .options(MobileBrokerConfig::reconfig())
            .start();
        let p = net.create_client(b(1), c(1));
        let s = net.create_client(b(5), c(2));
        p.advertise(range(0, 100));
        s.subscribe(range(0, 100));
        std::thread::sleep(Duration::from_millis(50));
        assert!(s.move_to(b(2), ProtocolKind::Reconfig, Duration::from_secs(5)));
        assert_eq!(net.home_of(c(2)), Some(b(2)));
        p.publish(Publication::new().with("x", 5));
        assert!(s.recv_timeout(Duration::from_secs(2)).is_some());
        net.shutdown();
    }

    #[test]
    fn covering_move_over_threads() {
        let net = Network::builder()
            .overlay(Topology::chain(5))
            .options(MobileBrokerConfig::covering())
            .start();
        let p = net.create_client(b(1), c(1));
        let s = net.create_client(b(5), c(2));
        p.advertise(range(0, 100));
        s.subscribe(range(0, 100));
        std::thread::sleep(Duration::from_millis(50));
        assert!(s.move_to(b(3), ProtocolKind::Covering, Duration::from_secs(5)));
        p.publish(Publication::new().with("x", 5));
        assert!(s.recv_timeout(Duration::from_secs(2)).is_some());
        net.shutdown();
    }

    #[test]
    fn no_duplicates_across_repeated_moves() {
        let net = Network::builder()
            .overlay(Topology::chain(4))
            .options(MobileBrokerConfig::reconfig())
            .start();
        let p = net.create_client(b(1), c(1));
        let s = net.create_client(b(4), c(2));
        p.advertise(range(0, 100));
        s.subscribe(range(0, 100));
        std::thread::sleep(Duration::from_millis(50));
        let mut total = 0;
        for round in 0..3 {
            let dest = if round % 2 == 0 { b(1) } else { b(4) };
            assert!(s.move_to(dest, ProtocolKind::Reconfig, Duration::from_secs(5)));
            p.publish(Publication::new().with("x", round));
            total += 1;
        }
        std::thread::sleep(Duration::from_millis(200));
        let got = s.drain();
        assert_eq!(got.len(), total);
        let ids: std::collections::BTreeSet<_> = got.iter().map(|x| x.id).collect();
        assert_eq!(ids.len(), total, "duplicate deliveries");
        net.shutdown();
    }

    /// The pipeline's contended path: a publisher floods broker
    /// batches (the ingest stage pre-matching under the read lock)
    /// while the subscriber's movement transactions commit (the apply
    /// stage holding the write lock and bumping the routing version).
    /// Every move must commit, deliveries must stay duplicate-free,
    /// and routing must keep following the subscriber afterwards.
    #[test]
    fn publish_flood_during_moves_stays_consistent() {
        let net = Network::builder()
            .overlay(Topology::chain(4))
            .options(MobileBrokerConfig::reconfig())
            .start();
        let p = net.create_client(b(1), c(1));
        let s = net.create_client(b(4), c(2));
        p.advertise(range(0, 100_000));
        s.subscribe(range(0, 100_000));
        std::thread::sleep(Duration::from_millis(50));

        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flood = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut x = 0i64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    p.publish(Publication::new().with("x", x));
                    x += 1;
                    if x % 16 == 0 {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
                p // keep the publisher handle alive for the epilogue
            })
        };
        for round in 0..4 {
            let dest = if round % 2 == 0 { b(2) } else { b(4) };
            assert!(
                s.move_to(dest, ProtocolKind::Reconfig, Duration::from_secs(10)),
                "move {round} must commit under the publish flood"
            );
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let p = flood.join().expect("flood thread");
        std::thread::sleep(Duration::from_millis(300));
        let got = s.drain();
        let ids: std::collections::BTreeSet<_> = got.iter().map(|x| x.id).collect();
        assert_eq!(
            ids.len(),
            got.len(),
            "duplicate deliveries under contention"
        );
        // Liveness epilogue: routing still follows the subscriber.
        p.publish(Publication::new().with("x", 99_999));
        assert!(
            s.recv_timeout(Duration::from_secs(3)).is_some(),
            "delivery after the contended move sequence"
        );
        net.shutdown();
    }

    #[test]
    fn drop_shuts_down_threads() {
        let net = Network::builder()
            .overlay(Topology::chain(2))
            .options(MobileBrokerConfig::reconfig())
            .start();
        let _cl = net.create_client(b(1), c(1));
        drop(net); // must not hang
    }
}
