//! Wire-level fault injection over real sockets: a peer that frames
//! garbage, a publication flood against a dead neighbour, and a
//! differential run of the same scenario under both codecs — the
//! regression suite for the framing bugfixes of ISSUE 7.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use transmob_broker::Topology;
use transmob_core::{MobileBrokerConfig, ProtocolKind};
use transmob_pubsub::{BrokerId, ClientId, Filter, Publication};
use transmob_runtime::codec::WireMode;
use transmob_runtime::tcp::{TcpClient, TcpNetwork, TcpOptions};

const B1: BrokerId = BrokerId(1);
const B2: BrokerId = BrokerId(2);

fn attr(name: &str, lo: i64, hi: i64) -> Filter {
    Filter::builder().ge(name, lo).le(name, hi).build()
}

fn wait_until(what: &str, timeout: Duration, mut done: impl FnMut() -> bool) {
    let deadline = std::time::Instant::now() + timeout;
    while !done() {
        assert!(std::time::Instant::now() < deadline, "timed out: {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Publishes with a retry loop until the subscriber hears one — the
/// subscription may still be propagating through a freshly healed
/// overlay.
fn assert_delivery(p: &TcpClient, s: &TcpClient, name: &str, val: i64) {
    for _ in 0..15 {
        p.publish(Publication::new().with(name, val));
        if s.recv_timeout(Duration::from_millis(500)).is_some() {
            return;
        }
    }
    panic!("no delivery of {name}={val} after overlay healed");
}

/// Satellite bugfix 3: a peer that sends a corrupt frame must not make
/// the reader die silently — the failure is counted, the link-down
/// reason names the corruption, and the overlay heals by redial.
#[test]
fn corrupt_frame_is_counted_and_names_the_cause() {
    let net = TcpNetwork::builder()
        .overlay(Topology::chain(2))
        .options(MobileBrokerConfig::reconfig())
        .start()
        .expect("sockets");
    let p = net.create_client(B1, ClientId(1));
    let s = net.create_client(B2, ClientId(2));
    p.advertise(attr("x", 0, 100));
    s.subscribe(attr("x", 0, 100));
    std::thread::sleep(Duration::from_millis(150));
    p.publish(Publication::new().with("x", 1));
    assert!(
        s.recv_timeout(Duration::from_secs(3)).is_some(),
        "baseline delivery"
    );

    // Take the real peer down, then pose as broker 2 on a fresh
    // connection and frame garbage at broker 1.
    net.kill_broker(B2);
    wait_until("B1 notices the outage", Duration::from_secs(3), || {
        !net.link_up(B1, B2)
    });
    {
        let addr = net.broker_addr(B1).expect("broker 1 address");
        let imp = TcpStream::connect(addr).expect("connect impostor");
        let mut w = imp.try_clone().expect("clone");
        writeln!(w, "2 {}", net.wire_mode().token()).expect("handshake");
        w.flush().expect("handshake flush");
        let mut reply = String::new();
        BufReader::new(imp.try_clone().expect("clone"))
            .read_line(&mut reply)
            .expect("handshake reply");
        assert_eq!(reply.trim(), "ok", "acceptor must admit the impostor");
        // Not a frame in either codec: in JSON mode the line fails to
        // parse; in binary mode the first byte promises a 35-byte
        // payload the closed socket never completes.
        w.write_all(b"#corrupt#\n").expect("garbage");
        w.flush().expect("garbage flush");
        // Dropping the socket gives the reader EOF mid-frame.
    }
    wait_until(
        "decode failure counted on B1->B2",
        Duration::from_secs(3),
        || {
            net.link_stats(B1, B2)
                .is_some_and(|st| st.decode_failures >= 1)
        },
    );
    let stats = net.link_stats(B1, B2).expect("stats");
    let reason = stats.down_reason.expect("link went down with a reason");
    assert!(
        reason.contains("corrupt frame"),
        "down reason must name the corruption, got: {reason}"
    );

    // The overlay heals: restart the real peer, the dialer's backoff
    // loop reconnects, and delivery works end to end again.
    net.restart_broker(B2).expect("restart");
    wait_until("link heals after restart", Duration::from_secs(5), || {
        net.link_up(B1, B2) && net.link_up(B2, B1)
    });
    assert_delivery(&p, &s, "x", 2);
    net.shutdown();
}

/// Satellite bugfix 2, end to end: a publication flood against a dead
/// neighbour is bounded by the down-queue high-water mark (drops
/// counted), while a subscription issued during the outage — a control
/// frame — survives the overflow and works after the restart.
#[test]
fn down_queue_bounds_flood_but_control_frames_survive() {
    const HWM: usize = 16;
    let options = TcpOptions {
        wire: WireMode::from_env(),
        down_queue_hwm: HWM,
        ..TcpOptions::default()
    };
    let net = TcpNetwork::builder()
        .overlay(Topology::chain(2))
        .options(MobileBrokerConfig::reconfig())
        .tcp(options)
        .bind(|_| "127.0.0.1:0".to_string())
        .start()
        .expect("sockets");
    let p = net.create_client(B1, ClientId(1));
    let s = net.create_client(B2, ClientId(2));
    let a2 = net.create_client(B2, ClientId(3));
    p.advertise(attr("x", 0, 1_000_000));
    s.subscribe(attr("x", 0, 1_000_000));
    a2.advertise(attr("y", 0, 100));
    std::thread::sleep(Duration::from_millis(150));
    p.publish(Publication::new().with("x", 1));
    assert!(
        s.recv_timeout(Duration::from_secs(3)).is_some(),
        "baseline delivery"
    );

    net.kill_broker(B2);
    wait_until("B1 notices the outage", Duration::from_secs(3), || {
        !net.link_up(B1, B2)
    });
    // Flood: far more publications than the queue may hold.
    for i in 0..100 {
        p.publish(Publication::new().with("x", 100 + i));
    }
    wait_until(
        "high-water mark drops the overflow",
        Duration::from_secs(5),
        || {
            net.link_stats(B1, B2)
                .is_some_and(|st| st.dropped_publications >= 50)
        },
    );
    // A subscription issued mid-outage rides the same queue as a
    // control frame; the mark must evict a publication, not this.
    let s3 = net.create_client(B1, ClientId(4));
    s3.subscribe(attr("y", 0, 100));
    std::thread::sleep(Duration::from_millis(100));

    net.restart_broker(B2).expect("restart");
    wait_until("link heals after restart", Duration::from_secs(5), || {
        net.link_up(B1, B2) && net.link_up(B2, B1)
    });
    // The retained tail of the flood flushes to the recovered
    // subscriber — no more than the mark allowed to stay queued.
    std::thread::sleep(Duration::from_millis(500));
    let retained = s.drain().len();
    assert!(
        retained >= 1,
        "the queue's retained publications must flush on reconnect"
    );
    assert!(
        retained <= HWM,
        "at most {HWM} flood publications may survive, got {retained}"
    );
    // The control frame survived the overflow: the mid-outage
    // subscription routes publications after the restart.
    assert_delivery(&a2, &s3, "y", 7);
    net.shutdown();
}

/// The tentpole's safety net: the same scenario (delivery plus a
/// transactional move) under the binary codec and under the JSON
/// debug codec must produce identical outcomes — the wire format is
/// an implementation detail, never semantics.
#[test]
fn binary_and_json_modes_agree_end_to_end() {
    let run = |wire: WireMode| -> Vec<u64> {
        let options = TcpOptions {
            wire,
            ..TcpOptions::default()
        };
        let net = TcpNetwork::builder()
            .overlay(Topology::chain(3))
            .options(MobileBrokerConfig::reconfig())
            .tcp(options)
            .bind(|_| "127.0.0.1:0".to_string())
            .start()
            .expect("sockets");
        assert_eq!(net.wire_mode(), wire);
        let p = net.create_client(B1, ClientId(1));
        let s = net.create_client(BrokerId(3), ClientId(2));
        p.advertise(attr("x", 0, 100));
        s.subscribe(attr("x", 0, 100));
        std::thread::sleep(Duration::from_millis(150));
        for i in 0..5 {
            p.publish(Publication::new().with("x", i));
        }
        assert!(
            s.move_to(B2, ProtocolKind::Reconfig, Duration::from_secs(10)),
            "move commits under {wire}"
        );
        for i in 5..10 {
            p.publish(Publication::new().with("x", i));
        }
        let mut got = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while got.len() < 10 && std::time::Instant::now() < deadline {
            if let Some(msg) = s.recv_timeout(Duration::from_millis(200)) {
                got.push(msg.id.0);
            }
        }
        std::thread::sleep(Duration::from_millis(100));
        assert!(s.drain().is_empty(), "duplicate deliveries under {wire}");
        net.shutdown();
        got.sort_unstable();
        got
    };
    let binary = run(WireMode::Binary);
    let json = run(WireMode::Json);
    assert_eq!(binary.len(), 10, "binary mode lost notifications");
    assert_eq!(
        binary, json,
        "the two codecs must deliver the same notifications"
    );
}
