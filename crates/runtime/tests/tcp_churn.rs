//! Overlay churn over real sockets: a broker dies *permanently*, the
//! survivors' failure detectors promote the silent link to
//! broker-death suspicion ([`TcpOptions::suspicion_after`]), the
//! overlay self-repairs around the hole, and a publication published
//! after the repair reaches every surviving matching subscriber
//! exactly once (DESIGN.md §14).

use std::time::Duration;

use transmob_broker::Topology;
use transmob_core::MobileBrokerConfig;
use transmob_pubsub::{BrokerId, ClientId, Filter, Publication};
use transmob_runtime::tcp::{TcpNetwork, TcpOptions};

fn b(i: u32) -> BrokerId {
    BrokerId(i)
}
fn c(i: u64) -> ClientId {
    ClientId(i)
}
fn everything() -> Filter {
    Filter::builder().ge("x", 0).le("x", 100).build()
}

/// Aggressive detector settings so the test converges in hundreds of
/// milliseconds: suspect after 4 failed redials or 400 ms of inbound
/// silence on a down link.
fn churn_options() -> TcpOptions {
    TcpOptions {
        heartbeat_interval: Duration::from_millis(25),
        failure_timeout: Duration::from_millis(400),
        suspicion_after: Some(4),
        ..TcpOptions::default()
    }
}

fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    for _ in 0..600 {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("timed out waiting for {what}");
}

/// Kill the middle broker of a chain for good: both sides suspect it,
/// repair creates the bypass edge, and a post-repair publication
/// reaches both surviving subscribers exactly once over the new link.
#[test]
fn suspicion_promotes_death_and_repair_restores_delivery() {
    let net = TcpNetwork::builder()
        .overlay(Topology::chain(4))
        .options(MobileBrokerConfig::reconfig())
        .tcp(churn_options())
        .bind(|_| "127.0.0.1:0".to_string())
        .start()
        .expect("sockets");
    let publisher = net.create_client(b(1), c(1));
    let near_sub = net.create_client(b(2), c(2));
    let far_sub = net.create_client(b(4), c(3));
    publisher.advertise(everything());
    near_sub.subscribe(everything());
    far_sub.subscribe(everything());
    // Sanity: the intact overlay delivers end to end.
    std::thread::sleep(Duration::from_millis(150));
    publisher.publish(Publication::new().with("x", 1));
    assert!(near_sub.recv_timeout(Duration::from_secs(5)).is_some());
    assert!(far_sub.recv_timeout(Duration::from_secs(5)).is_some());

    // Permanent death of the path broker B3. B2 (the dialer of edge
    // 2–3) suspects by redial exhaustion; B4 (the acceptor of edge
    // 3–4) suspects by inbound silence; whoever fires first floods the
    // death notice, and the repair's bypass edge 2–4 materializes as a
    // real socket.
    net.kill_broker(b(3));
    wait_for("suspicion of broker 3", || net.suspected().contains(&b(3)));
    wait_for("repair edge 2-4 up", || {
        net.link_up(b(2), b(4)) && net.link_up(b(4), b(2))
    });

    // Delivery transparency after repair: a fresh publication reaches
    // both surviving subscribers over the repaired overlay.
    publisher.publish(Publication::new().with("x", 42));
    let near = near_sub.recv_timeout(Duration::from_secs(5));
    let far = far_sub.recv_timeout(Duration::from_secs(5));
    assert!(
        near.is_some(),
        "survivor at B2 missed the post-repair publication"
    );
    assert!(
        far.is_some(),
        "survivor at B4 missed the post-repair publication"
    );
    // Exactly once: no repair-induced duplicates trail behind.
    std::thread::sleep(Duration::from_millis(200));
    assert!(near_sub.drain().is_empty(), "duplicate at B2");
    assert!(far_sub.drain().is_empty(), "duplicate at B4");

    // A broker the overlay excised cannot be restarted back in.
    let err = net
        .restart_broker(b(3))
        .expect_err("excised broker must not restart");
    assert_eq!(err.kind(), std::io::ErrorKind::AddrNotAvailable, "{err}");
    net.shutdown();
}

/// With suspicion disabled (the default), a dead broker is *never*
/// promoted: links queue and redial forever, which is what the
/// crash/restart recovery tests rely on.
#[test]
fn suspicion_disabled_never_promotes() {
    let net = TcpNetwork::builder()
        .overlay(Topology::chain(3))
        .options(MobileBrokerConfig::reconfig())
        .start()
        .expect("sockets");
    net.kill_broker(b(3));
    std::thread::sleep(Duration::from_millis(600));
    assert!(
        net.suspected().is_empty(),
        "default options must never suspect"
    );
    // The outage stays a recoverable crash: restarting heals the link.
    net.restart_broker(b(3)).expect("restart");
    wait_for("link 2-3 heals", || {
        net.link_up(b(2), b(3)) && net.link_up(b(3), b(2))
    });
    net.shutdown();
}
