//! End-to-end smoke for the parallel matching stage on the TCP
//! runtime: real sockets, brokers configured with sharded tables and a
//! worker pool, delivery and movement must behave exactly as with the
//! sequential default (socket timing is nondeterministic, so this
//! driver gets a behavioural check rather than a log-for-log diff).

use std::time::Duration;

use transmob_broker::{Parallelism, Topology};
use transmob_core::{MobileBrokerConfig, ProtocolKind};
use transmob_pubsub::{BrokerId, ClientId, Filter, Publication};
use transmob_runtime::tcp::TcpNetwork;

fn range(lo: i64, hi: i64) -> Filter {
    Filter::builder().ge("x", lo).le("x", hi).build()
}

#[test]
fn tcp_delivers_and_moves_under_parallel_config() {
    let config = MobileBrokerConfig::reconfig().with_parallelism(Parallelism::sharded(4, 2));
    let net = TcpNetwork::start(Topology::chain(3), config).expect("sockets");
    let p = net.create_client(BrokerId(1), ClientId(1));
    let s = net.create_client(BrokerId(3), ClientId(2));
    p.advertise(range(0, 100));
    s.subscribe(range(0, 100));
    std::thread::sleep(Duration::from_millis(150));
    p.publish(Publication::new().with("x", 1));
    assert!(
        s.recv_timeout(Duration::from_secs(3)).is_some(),
        "delivery through sharded tables"
    );
    // Move the subscriber across the chain and prove routing still
    // follows it with the parallel stage active at every broker.
    assert!(
        s.move_to(BrokerId(2), ProtocolKind::Reconfig, Duration::from_secs(5)),
        "movement must commit under parallel config"
    );
    std::thread::sleep(Duration::from_millis(300));
    p.publish(Publication::new().with("x", 2));
    assert!(
        s.recv_timeout(Duration::from_secs(3)).is_some(),
        "delivery after movement under parallel config"
    );
    net.shutdown();
}
