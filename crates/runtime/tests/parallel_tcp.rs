//! End-to-end smoke for the parallel matching stage on the TCP
//! runtime: real sockets, brokers configured with sharded tables and a
//! worker pool, delivery and movement must behave exactly as with the
//! sequential default (socket timing is nondeterministic, so this
//! driver gets a behavioural check rather than a log-for-log diff).

use std::time::Duration;

use transmob_broker::{Parallelism, Topology};
use transmob_core::{MobileBrokerConfig, ProtocolKind};
use transmob_pubsub::{BrokerId, ClientId, Filter, Publication};
use transmob_runtime::tcp::TcpNetwork;

fn range(lo: i64, hi: i64) -> Filter {
    Filter::builder().ge("x", lo).le("x", hi).build()
}

#[test]
fn tcp_delivers_and_moves_under_parallel_config() {
    let config = MobileBrokerConfig::reconfig().with_parallelism(Parallelism::sharded(4, 2));
    let net = TcpNetwork::builder()
        .overlay(Topology::chain(3))
        .options(config)
        .start()
        .expect("sockets");
    let p = net.create_client(BrokerId(1), ClientId(1));
    let s = net.create_client(BrokerId(3), ClientId(2));
    p.advertise(range(0, 100));
    s.subscribe(range(0, 100));
    std::thread::sleep(Duration::from_millis(150));
    p.publish(Publication::new().with("x", 1));
    assert!(
        s.recv_timeout(Duration::from_secs(3)).is_some(),
        "delivery through sharded tables"
    );
    // Move the subscriber across the chain and prove routing still
    // follows it with the parallel stage active at every broker.
    assert!(
        s.move_to(BrokerId(2), ProtocolKind::Reconfig, Duration::from_secs(5)),
        "movement must commit under parallel config"
    );
    std::thread::sleep(Duration::from_millis(300));
    p.publish(Publication::new().with("x", 2));
    assert!(
        s.recv_timeout(Duration::from_secs(3)).is_some(),
        "delivery after movement under parallel config"
    );
    net.shutdown();
}

/// The same contention over real sockets with the pooled matching
/// stage active: coalesced multi-message frames keep the TCP ingest
/// stage pre-matching while movement commits take the write lock.
/// Deliveries must stay duplicate-free and routing must follow the
/// subscriber through every move.
#[test]
fn tcp_publish_flood_during_moves_stays_consistent() {
    let config = MobileBrokerConfig::reconfig().with_parallelism(Parallelism::sharded(4, 4));
    let net = TcpNetwork::builder()
        .overlay(Topology::chain(3))
        .options(config)
        .start()
        .expect("sockets");
    let p = net.create_client(BrokerId(1), ClientId(1));
    let s = net.create_client(BrokerId(3), ClientId(2));
    p.advertise(range(0, 100_000));
    s.subscribe(range(0, 100_000));
    std::thread::sleep(Duration::from_millis(150));

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let flood = {
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut x = 0i64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                p.publish(Publication::new().with("x", x));
                x += 1;
                if x % 8 == 0 {
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
            p
        })
    };
    for round in 0..2 {
        let dest = if round % 2 == 0 {
            BrokerId(2)
        } else {
            BrokerId(3)
        };
        assert!(
            s.move_to(dest, ProtocolKind::Reconfig, Duration::from_secs(15)),
            "move {round} must commit under the publish flood over TCP"
        );
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let p = flood.join().expect("flood thread");
    std::thread::sleep(Duration::from_millis(400));
    let got = s.drain();
    let ids: std::collections::BTreeSet<_> = got.iter().map(|x| x.id).collect();
    assert_eq!(ids.len(), got.len(), "duplicate deliveries over TCP");
    p.publish(Publication::new().with("x", 99_999));
    assert!(
        s.recv_timeout(Duration::from_secs(5)).is_some(),
        "delivery after the contended move sequence over TCP"
    );
    net.shutdown();
}
