//! Crash–recovery over real sockets: kill a broker process
//! mid-movement, restart it from its durability log, and demand that
//! the movement resolves cleanly (commit or abort) with the client
//! running at exactly one broker afterwards — the TCP half of the
//! ISSUE 3 acceptance criteria.

use std::time::Duration;

use transmob_broker::Topology;
use transmob_core::{MobileBrokerConfig, ProtocolKind};
use transmob_pubsub::{BrokerId, ClientId, Filter, Publication};
use transmob_runtime::tcp::TcpNetwork;

const PUBLISHER: ClientId = ClientId(1);
const MOVER: ClientId = ClientId(2);
const B1: BrokerId = BrokerId(1);
const B2: BrokerId = BrokerId(2);
const B3: BrokerId = BrokerId(3);

fn range(lo: i64, hi: i64) -> Filter {
    Filter::builder().ge("x", lo).le("x", hi).build()
}

/// Chain B1–B2–B3, publisher at B1, mover at B3, subscriptions in
/// place and verified end to end.
fn setup(
    config: MobileBrokerConfig,
) -> (
    TcpNetwork,
    transmob_runtime::tcp::TcpClient,
    transmob_runtime::tcp::TcpClient,
) {
    let net = TcpNetwork::builder()
        .overlay(Topology::chain(3))
        .options(config)
        .start()
        .expect("sockets");
    let p = net.create_client(B1, PUBLISHER);
    let s = net.create_client(B3, MOVER);
    p.advertise(range(0, 100));
    s.subscribe(range(0, 100));
    std::thread::sleep(Duration::from_millis(150));
    p.publish(Publication::new().with("x", 1));
    assert!(
        s.recv_timeout(Duration::from_secs(3)).is_some(),
        "baseline delivery before any fault"
    );
    (net, p, s)
}

/// A movement issued while the target broker is dead must survive the
/// outage: the negotiate queues at the surviving neighbour, the
/// restarted target (recovered from its WAL) is redialed with backoff,
/// the queued frame flushes, and the movement commits — the client
/// ends up at exactly the target broker.
#[test]
fn inflight_move_commits_after_target_restart() {
    let (net, p, s) = setup(MobileBrokerConfig::reconfig());
    net.kill_broker(B2);
    // The failure detector on the surviving sides notices the outage.
    std::thread::sleep(Duration::from_millis(200));
    assert!(!net.link_up(B1, B2), "B1 still believes the link is up");
    assert!(!net.link_up(B3, B2), "B3 still believes the link is up");

    std::thread::scope(|scope| {
        scope.spawn(|| {
            // Restart mid-movement: the move_to below has already
            // parked the source coordinator in Wait by now.
            std::thread::sleep(Duration::from_millis(300));
            net.restart_broker(B2).expect("restart");
        });
        assert!(
            s.move_to(B2, ProtocolKind::Reconfig, Duration::from_secs(15)),
            "movement across the outage must commit"
        );
    });
    assert_eq!(net.home_of(MOVER), Some(B2), "client home after commit");

    // The moved client receives the next publication exactly once.
    p.publish(Publication::new().with("x", 2));
    assert!(s.recv_timeout(Duration::from_secs(3)).is_some());
    std::thread::sleep(Duration::from_millis(150));
    assert!(s.drain().is_empty(), "duplicate delivery after recovery");
    net.shutdown();
}

/// Kill the broker *hosting* a client: after restart its WAL replay
/// rebuilds the hosted client stub and routing tables, deliveries
/// resume, and a subsequent movement commits normally.
#[test]
fn killed_source_recovers_hosted_client_from_wal() {
    let (net, p, s) = setup(MobileBrokerConfig::reconfig());
    net.kill_broker(B3);
    net.restart_broker(B3).expect("restart");
    // Give the redial loops a moment to re-knit the overlay (pubs that
    // race the reconnect just queue at B2 and flush, so this sleep is
    // comfort, not correctness).
    std::thread::sleep(Duration::from_millis(300));

    p.publish(Publication::new().with("x", 3));
    assert!(
        s.recv_timeout(Duration::from_secs(5)).is_some(),
        "delivery to the WAL-recovered client"
    );
    assert_eq!(net.home_of(MOVER), Some(B3), "client still at its home");

    assert!(
        s.move_to(B2, ProtocolKind::Reconfig, Duration::from_secs(15)),
        "movement after recovery must commit"
    );
    assert_eq!(net.home_of(MOVER), Some(B2));
    p.publish(Publication::new().with("x", 4));
    assert!(s.recv_timeout(Duration::from_secs(3)).is_some());
    std::thread::sleep(Duration::from_millis(150));
    assert!(s.drain().is_empty(), "duplicate delivery after move");
    net.shutdown();
}

/// Double fault: the *source* dies mid-movement (after logging the
/// MoveTo) while the target is also dead, so the negotiate can never
/// complete. The restarted source re-arms the negotiate timer from its
/// WAL and aborts the movement cleanly — the client resumes at the
/// source, at exactly one broker, and keeps receiving publications.
#[test]
fn killed_source_mid_movement_aborts_cleanly_after_restart() {
    let config = MobileBrokerConfig {
        // Short protocol timeouts so the recovered coordinator's
        // re-armed timer resolves the wedged movement within the test.
        negotiate_timeout_ns: Some(1_500_000_000),
        state_timeout_ns: Some(1_500_000_000),
        ..MobileBrokerConfig::reconfig()
    };
    let (net, p, s) = setup(config);
    // Target dead: the negotiate frame parks in B3's retransmit queue.
    net.kill_broker(B2);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            std::thread::sleep(Duration::from_millis(200));
            // Source dies mid-movement; the queued negotiate dies with
            // it, but the MoveTo itself is already in the WAL.
            net.kill_broker(B3);
            std::thread::sleep(Duration::from_millis(200));
            net.restart_broker(B3).expect("restart source");
        });
        assert!(
            !s.move_to(B2, ProtocolKind::Reconfig, Duration::from_secs(15)),
            "movement with both peers crashed must abort, not commit"
        );
    });
    // The client resumed at the source.
    assert_eq!(net.home_of(MOVER), Some(B3), "client resumed at source");
    // Bring the target machine back too; the overlay re-knits.
    net.restart_broker(B2).expect("restart target");
    std::thread::sleep(Duration::from_millis(300));
    p.publish(Publication::new().with("x", 5));
    assert!(
        s.recv_timeout(Duration::from_secs(5)).is_some(),
        "delivery to the resumed client"
    );
    net.shutdown();
}

/// The failure detector's view: heartbeats flow while healthy, the
/// link drops within a few heartbeat intervals of a kill, and both
/// heartbeats and connectivity resume after the restart.
#[test]
fn failure_detector_tracks_kill_and_restart() {
    let net = TcpNetwork::builder()
        .overlay(Topology::chain(2))
        .options(MobileBrokerConfig::reconfig())
        .start()
        .expect("sockets");
    std::thread::sleep(Duration::from_millis(300));
    assert!(net.heartbeats_seen(B1) > 0, "no heartbeats while healthy");
    assert!(net.link_up(B1, B2));

    net.kill_broker(B2);
    std::thread::sleep(Duration::from_millis(300));
    assert!(!net.link_up(B1, B2), "kill not detected");
    assert!(
        net.peer_silence(B1, B2).expect("link exists") >= Duration::from_millis(200),
        "silence not accumulating on a dead peer"
    );

    net.restart_broker(B2).expect("restart");
    // The dialer's capped backoff is at most 400 ms between attempts.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while !(net.link_up(B1, B2) && net.link_up(B2, B1)) {
        assert!(
            std::time::Instant::now() < deadline,
            "link did not re-establish after restart"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let before = net.heartbeats_seen(B1);
    std::thread::sleep(Duration::from_millis(300));
    assert!(
        net.heartbeats_seen(B1) > before,
        "heartbeats did not resume after restart"
    );
    net.shutdown();
}
