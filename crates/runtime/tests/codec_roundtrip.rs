//! Property suite for the wire codec ([`transmob_runtime::codec`]):
//! on arbitrary frame streams the binary codec and the JSON debug
//! codec must decode back to exactly the same frames (the differential
//! oracle of ISSUE 7), a connection reset must reset the string table
//! on both sides, and truncated or garbage-suffixed streams must fail
//! cleanly — an error or end-of-stream, never a panic or a bogus
//! frame before the corruption point.

use proptest::prelude::*;
use transmob_broker::PubSubMsg;
use transmob_core::{ClientOp, ClientProfile, ClientSnapshot, Message, MoveMsg, ProtocolKind};
use transmob_pubsub::{
    AdvId, Advertisement, BrokerId, ClientId, Filter, MoveId, PubId, Publication, PublicationMsg,
    SubId, Subscription, Value,
};
use transmob_runtime::codec::{Frame, FrameDecoder, FrameEncoder, ReadError, WireMode};

const ATTRS: [&str; 4] = ["x", "y", "stock", "volume"];

/// Attribute names drawn from a small pool (so the interner sees
/// repeats) plus per-case variation (so it also sees fresh strings).
fn arb_name() -> impl Strategy<Value = String> {
    (0usize..ATTRS.len(), 0u32..4).prop_map(|(i, salt)| {
        if salt == 0 {
            format!("attr{i}")
        } else {
            ATTRS[i].to_string()
        }
    })
}

/// Floats stay at quarter-integers: exactly representable, so the
/// JSON debug codec's decimal round-trip cannot introduce drift that
/// the differential would misreport as a framing bug.
fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1_000_000i64..1_000_000).prop_map(Value::Int),
        (-4000i64..4000).prop_map(|i| Value::Float(i as f64 * 0.25)),
        arb_name().prop_map(Value::Str),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn arb_publication() -> impl Strategy<Value = Publication> {
    proptest::collection::vec((arb_name(), arb_value()), 0..5)
        .prop_map(|kv| kv.into_iter().collect())
}

fn arb_filter() -> impl Strategy<Value = Filter> {
    proptest::collection::vec((0usize..ATTRS.len(), 0u8..5, -50i64..50), 1..4).prop_map(|specs| {
        specs
            .iter()
            .fold(Filter::builder(), |b, &(ai, kind, v)| {
                let a = ATTRS[ai];
                match kind {
                    0 => b.ge(a, v),
                    1 => b.le(a, v),
                    2 => b.eq(a, v),
                    3 => b.prefix(a, "al"),
                    _ => b.any(a),
                }
            })
            .build()
    })
}

fn arb_client() -> impl Strategy<Value = ClientId> {
    (0u64..8).prop_map(ClientId)
}

fn arb_pubsub() -> impl Strategy<Value = PubSubMsg> {
    prop_oneof![
        (arb_client(), 0u32..8, arb_filter()).prop_map(|(c, seq, f)| PubSubMsg::Advertise(
            Advertisement::new(AdvId::new(c, seq), f)
        )),
        (arb_client(), 0u32..8).prop_map(|(c, seq)| PubSubMsg::Unadvertise(AdvId::new(c, seq))),
        (arb_client(), 0u32..8, arb_filter())
            .prop_map(|(c, seq, f)| PubSubMsg::Subscribe(Subscription::new(SubId::new(c, seq), f))),
        (arb_client(), 0u32..8).prop_map(|(c, seq)| PubSubMsg::Unsubscribe(SubId::new(c, seq))),
        (0u64..1000, arb_client(), arb_publication())
            .prop_map(|(id, c, p)| PubSubMsg::Publish(PublicationMsg::new(PubId(id), c, p))),
    ]
}

fn arb_client_op() -> impl Strategy<Value = ClientOp> {
    prop_oneof![
        arb_filter().prop_map(ClientOp::Subscribe),
        (0u32..8).prop_map(ClientOp::Unsubscribe),
        arb_filter().prop_map(ClientOp::Advertise),
        (0u32..8).prop_map(ClientOp::Unadvertise),
        arb_publication().prop_map(ClientOp::Publish),
        Just(ClientOp::Pause),
        Just(ClientOp::Resume),
        (1u32..6).prop_map(|b| ClientOp::MoveTo(BrokerId(b), ProtocolKind::Reconfig)),
    ]
}

fn arb_snapshot() -> impl Strategy<Value = ClientSnapshot> {
    let pub_msg = (0u64..1000, 0u64..8, arb_publication())
        .prop_map(|(id, c, p)| PublicationMsg::new(PubId(id), ClientId(c), p));
    (
        proptest::collection::vec(pub_msg, 0..3),
        proptest::collection::vec((0u64..1000).prop_map(PubId), 0..4),
        proptest::collection::vec(arb_client_op(), 0..3),
        (0u32..9, 0u32..9, 0u32..9),
    )
        .prop_map(|(buffered, seen, queued_ops, next_seq)| ClientSnapshot {
            buffered,
            seen,
            queued_ops,
            next_seq,
        })
}

fn arb_profile() -> impl Strategy<Value = ClientProfile> {
    let sub = (arb_client(), 0u32..8, arb_filter())
        .prop_map(|(c, seq, f)| Subscription::new(SubId::new(c, seq), f));
    let adv = (arb_client(), 0u32..8, arb_filter())
        .prop_map(|(c, seq, f)| Advertisement::new(AdvId::new(c, seq), f));
    (
        proptest::collection::vec(sub, 0..3),
        proptest::collection::vec(adv, 0..3),
    )
        .prop_map(|(subs, advs)| ClientProfile { subs, advs })
}

/// A sample of the movement protocol (the per-variant exhaustive
/// round-trip lives with the `Wire` impl in `transmob-core`); the
/// heavyweight payload carriers matter most here.
fn arb_move() -> impl Strategy<Value = MoveMsg> {
    let ids = (0u64..100, 0u64..8, 1u32..6, 1u32..6);
    prop_oneof![
        (ids.clone(), arb_profile()).prop_map(|((m, c, s, t), profile)| MoveMsg::Negotiate {
            m: MoveId(m),
            client: ClientId(c),
            source: BrokerId(s),
            target: BrokerId(t),
            profile,
            protocol: ProtocolKind::Reconfig,
        }),
        (ids.clone(), arb_snapshot()).prop_map(|((m, c, s, t), snapshot)| MoveMsg::StateTransfer {
            m: MoveId(m),
            client: ClientId(c),
            source: BrokerId(s),
            target: BrokerId(t),
            snapshot,
        }),
        ids.prop_map(|(m, _, s, t)| MoveMsg::Ack {
            m: MoveId(m),
            source: BrokerId(s),
            target: BrokerId(t),
        }),
    ]
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        arb_pubsub().prop_map(Message::PubSub),
        arb_pubsub().prop_map(Message::PubSub),
        arb_pubsub().prop_map(Message::PubSub),
        arb_move().prop_map(Message::Move),
    ]
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    fn msg_frame() -> impl Strategy<Value = Frame> {
        (0u32..16, proptest::collection::vec(arb_message(), 0..6))
            .prop_map(|(from, msgs)| Frame::Msg { from, msgs })
    }
    prop_oneof![
        msg_frame(),
        msg_frame(),
        msg_frame(),
        msg_frame(),
        (0u32..16).prop_map(|from| Frame::Ping { from }),
    ]
}

/// Encodes `frames` on one connection-lifetime encoder, so later
/// frames lean on the string table built by earlier ones.
fn encode_stream(mode: WireMode, frames: &[Frame]) -> Vec<u8> {
    let mut enc = FrameEncoder::new(mode);
    let mut buf = Vec::new();
    for f in frames {
        buf.extend_from_slice(enc.encode(f).expect("encoding is total"));
    }
    buf
}

/// Decodes frames until end-of-stream or an error.
fn decode_stream(mode: WireMode, buf: &[u8]) -> (Vec<Frame>, Option<ReadError>) {
    let mut dec = FrameDecoder::new(mode);
    let mut r = buf;
    let mut out = Vec::new();
    loop {
        match dec.read_frame(&mut r) {
            Ok(Some(f)) => out.push(f),
            Ok(None) => return (out, None),
            Err(e) => return (out, Some(e)),
        }
    }
}

proptest! {
    /// The tentpole differential: for any frame stream, binary bytes
    /// and JSON bytes decode back to the identical frames.
    #[test]
    fn binary_and_json_decode_identically(frames in proptest::collection::vec(arb_frame(), 1..8)) {
        for mode in [WireMode::Binary, WireMode::Json] {
            let buf = encode_stream(mode, &frames);
            let (decoded, err) = decode_stream(mode, &buf);
            prop_assert!(err.is_none(), "clean stream errored under {mode}: {err:?}");
            prop_assert_eq!(&decoded, &frames, "{} round-trip mismatch", mode);
        }
    }

    /// Redial contract: both sides replace their string tables on a
    /// fresh connection, so a stream re-encoded by a fresh encoder
    /// decodes with a fresh decoder — even though the same frames had
    /// already populated a previous connection's table.
    #[test]
    fn string_table_resets_with_the_connection(
        frames in proptest::collection::vec(arb_frame(), 1..6),
        cut in 0usize..6,
    ) {
        let cut = cut.min(frames.len());
        // First connection carries a prefix, fully interned.
        let mut enc = FrameEncoder::new(WireMode::Binary);
        for f in &frames[..cut] {
            enc.encode(f).expect("encoding is total");
        }
        // The link drops; the redialed connection re-sends everything
        // queued, through a fresh encoder, to a peer with a fresh
        // decoder — old table state must not leak in.
        let buf = encode_stream(WireMode::Binary, &frames);
        let (decoded, err) = decode_stream(WireMode::Binary, &buf);
        prop_assert!(err.is_none(), "redialed stream errored: {err:?}");
        prop_assert_eq!(&decoded, &frames);
    }

    /// Truncation at every byte boundary: the frames before the cut
    /// decode intact, the cut itself surfaces as corruption or clean
    /// end-of-stream — never a panic, never a wrong frame.
    #[test]
    fn truncation_is_detected_at_every_prefix(
        frames in proptest::collection::vec(arb_frame(), 1..4),
    ) {
        for mode in [WireMode::Binary, WireMode::Json] {
            let buf = encode_stream(mode, &frames);
            for cut in 0..buf.len() {
                let (decoded, _err) = decode_stream(mode, &buf[..cut]);
                prop_assert!(
                    decoded.len() <= frames.len()
                        && decoded == frames[..decoded.len()],
                    "{mode}: truncation at {cut} produced frames that were never sent"
                );
            }
        }
    }

    /// A stream with garbage appended yields the real frames first;
    /// reading past them terminates (error, EOF, or — for genuinely
    /// frame-shaped garbage — bounded extra frames), without panics.
    #[test]
    fn garbage_suffix_never_panics(
        frames in proptest::collection::vec(arb_frame(), 1..4),
        garbage in proptest::collection::vec(any::<u8>(), 1..40),
    ) {
        for mode in [WireMode::Binary, WireMode::Json] {
            let mut buf = encode_stream(mode, &frames);
            buf.extend_from_slice(&garbage);
            let (decoded, _err) = decode_stream(mode, &buf);
            prop_assert!(
                decoded.len() >= frames.len()
                    && decoded[..frames.len()] == frames[..],
                "{mode}: garbage suffix corrupted frames that arrived before it"
            );
        }
    }
}
