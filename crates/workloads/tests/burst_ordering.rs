//! Links the Fig. 7 workload structure to the covering-release burst
//! behaviour behind Figs. 9 and 11: when the *last* covering
//! (root-group) instance leaves a broker, the conservative release
//! re-forwards everything it quenched. The burst size must order by
//! the workloads' covering density: covered > tree > chained >
//! distinct (which has no bursts at all).

use transmob_broker::{BrokerConfig, MsgKind, PubSubMsg, SyncNet, Topology};
use transmob_pubsub::{AdvId, Advertisement, BrokerId, ClientId, SubId, Subscription};
use transmob_workloads::{full_space_adv, SubWorkload};

fn b(i: u32) -> BrokerId {
    BrokerId(i)
}
fn c(i: u64) -> ClientId {
    ClientId(i)
}

/// Subscribes one instance of every group (instances of group 0 last),
/// then unsubscribes the group-0 instance and counts the released
/// subscription traffic.
fn root_departure_burst(workload: SubWorkload) -> u64 {
    let mut net = SyncNet::builder()
        .overlay(Topology::chain(4))
        .options(BrokerConfig::covering())
        .start();
    net.client_send(
        b(1),
        c(1),
        PubSubMsg::Advertise(Advertisement::new(AdvId::new(c(1), 0), full_space_adv())),
    );
    // Root instance first so it quenches the rest.
    let root = Subscription::new(SubId::new(c(100), 0), workload.instance(0, 0));
    net.client_send(b(4), c(100), PubSubMsg::Subscribe(root.clone()));
    // Three instances of every other group, all quenched (directly or
    // transitively) where covering applies.
    for g in 1..10usize {
        for k in 0..3u64 {
            let cid = c(1000 + g as u64 * 10 + k);
            let sub = Subscription::new(SubId::new(cid, 0), workload.instance(g, 1 + k as i64));
            net.client_send(b(4), cid, PubSubMsg::Subscribe(sub));
        }
    }
    net.reset_traffic();
    net.client_send(b(4), c(100), PubSubMsg::Unsubscribe(root.id));
    *net.traffic().get(&MsgKind::Subscribe).unwrap_or(&0)
}

#[test]
fn release_burst_orders_by_covering_degree() {
    let covered = root_departure_burst(SubWorkload::Covered);
    let tree = root_departure_burst(SubWorkload::Tree);
    let chained = root_departure_burst(SubWorkload::Chained);
    let distinct = root_departure_burst(SubWorkload::Distinct);
    // Covered: the root quenched all 27 leaf instances — its departure
    // releases every one of them. Tree: only the three child groups
    // (9 instances) are directly quenched by the root; the leaves stay
    // quenched under the children. Chained: only group 1's instances
    // are directly released. Distinct: nothing was ever quenched.
    assert_eq!(distinct, 0, "distinct must have no covering bursts");
    assert!(
        covered > tree && tree > chained && chained > 0,
        "burst ordering violated: covered={covered} tree={tree} chained={chained} distinct={distinct}"
    );
}

#[test]
fn covered_burst_scales_with_population() {
    // The Fig. 10/11 mechanism: more quenched instances ⇒ bigger burst
    // when the quencher departs.
    let burst_at = |per_group: u64| {
        let mut net = SyncNet::builder()
            .overlay(Topology::chain(4))
            .options(BrokerConfig::covering())
            .start();
        net.client_send(
            b(1),
            c(1),
            PubSubMsg::Advertise(Advertisement::new(AdvId::new(c(1), 0), full_space_adv())),
        );
        let root = Subscription::new(SubId::new(c(100), 0), SubWorkload::Covered.instance(0, 0));
        net.client_send(b(4), c(100), PubSubMsg::Subscribe(root.clone()));
        for g in 1..10usize {
            for k in 0..per_group {
                let cid = c(1000 + g as u64 * 100 + k);
                let sub = Subscription::new(
                    SubId::new(cid, 0),
                    SubWorkload::Covered.instance(g, 1 + k as i64),
                );
                net.client_send(b(4), cid, PubSubMsg::Subscribe(sub));
            }
        }
        net.reset_traffic();
        net.client_send(b(4), c(100), PubSubMsg::Unsubscribe(root.id));
        *net.traffic().get(&MsgKind::Subscribe).unwrap_or(&0)
    };
    let small = burst_at(2);
    let large = burst_at(8);
    assert!(
        large >= small * 3,
        "burst did not scale with quenched population: {small} -> {large}"
    );
}

#[test]
fn second_root_suppresses_the_burst() {
    // With another root instance still forwarded... the conservative
    // release re-forwards regardless (that is the paper's behaviour),
    // but the released subscriptions are re-quenched one hop
    // downstream, so the burst stays local instead of cascading.
    let mut net = SyncNet::builder()
        .overlay(Topology::chain(4))
        .options(BrokerConfig::covering())
        .start();
    net.client_send(
        b(1),
        c(1),
        PubSubMsg::Advertise(Advertisement::new(AdvId::new(c(1), 0), full_space_adv())),
    );
    let root_a = Subscription::new(SubId::new(c(100), 0), SubWorkload::Covered.instance(0, 0));
    let root_b = Subscription::new(SubId::new(c(101), 0), SubWorkload::Covered.instance(0, 5));
    net.client_send(b(4), c(100), PubSubMsg::Subscribe(root_a.clone()));
    net.client_send(b(4), c(101), PubSubMsg::Subscribe(root_b));
    for g in 1..10usize {
        let cid = c(1000 + g as u64);
        let sub = Subscription::new(SubId::new(cid, 0), SubWorkload::Covered.instance(g, 1));
        net.client_send(b(4), cid, PubSubMsg::Subscribe(sub));
    }
    net.reset_traffic();
    net.client_send(b(4), c(100), PubSubMsg::Unsubscribe(root_a.id));
    let released = *net.traffic().get(&MsgKind::Subscribe).unwrap_or(&0);
    // Released subs travel B4→B3 but are quenched at B3 by root_b's
    // forwarded instance: at most one hop each plus the root_b
    // re-forward, far less than a full-path cascade (3 hops each).
    assert!(
        released <= 12,
        "burst cascaded past the surviving root: {released} messages"
    );
    // Deliveries still correct afterwards.
    use transmob_pubsub::{PubId, Publication, PublicationMsg};
    net.client_send(
        b(1),
        c(1),
        PubSubMsg::Publish(PublicationMsg::new(
            PubId(1),
            c(1),
            Publication::new().with(transmob_workloads::ATTR, 1501),
        )),
    );
    let d = net.take_deliveries();
    // Group-1 instance [1000+1, 1500+1] covers x=1501; root_b [5,10005]
    // matches too.
    assert_eq!(d.len(), 2, "deliveries wrong after suppressed burst");
}
