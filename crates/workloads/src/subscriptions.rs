//! The paper's Fig. 7 subscription workloads.
//!
//! Each workload is built from ten *subscription groups* over a
//! numeric attribute `x` with a precise covering structure; the
//! paper's Fig. 9 x-axis — "the number of covered subscriptions" — is
//! the maximum number of groups *directly* covered by any one group:
//!
//! - [`SubWorkload::Covered`] (x = 9): one root group covers nine
//!   disjoint leaf groups;
//! - [`SubWorkload::Chained`] (x = 1): a nested chain, each group
//!   directly covering exactly one other;
//! - [`SubWorkload::Tree`] (x = 3): a root directly covering three
//!   children, each covering two leaves;
//! - [`SubWorkload::Distinct`] (x = 0): ten mutually disjoint groups;
//! - [`SubWorkload::Random`]: uniform selection over the four above.
//!
//! Two further pools step outside the paper's single-attribute ranges
//! for workload realism (used by the `publish_batch` benchmarks):
//!
//! - [`SubWorkload::MultiAttr`]: disjoint `x` bands *conjoined with* a
//!   shared numeric range on a second attribute [`ATTR_Y`], so every
//!   match probes two attribute groups;
//! - [`SubWorkload::StrPrefix`]: disjoint `x` bands conjoined with a
//!   per-group string-prefix constraint on [`ATTR_TAG`], exercising
//!   the match index's string buckets next to its numeric sweep.
//!
//! Every *client* receives its own **instance** of a group: the group
//! range shifted by a client-specific offset ([`SubWorkload::assign`]).
//! Instances of the same group are mutually *incomparable* (neither
//! covers the other), while all cross-group covering relations are
//! preserved — the group ranges keep structural margins larger than
//! the maximum shift. This mirrors the paper's setup, where covering
//! relationships hold *between* clients' subscriptions: a broker
//! quenches a leaf-group subscription as long as at least one
//! root-group instance is forwarded, and the departure of the **last**
//! covering instance releases every quenched subscription at once —
//! the burst behaviour behind the paper's Fig. 9/11 pathology.
//!
//! The construction is validated by the unit tests against
//! [`Filter::covers`], so the covering relations seen by the broker
//! network are exactly the intended ones.

use std::fmt;

use transmob_pubsub::Filter;

/// The attribute all workload subscriptions range over.
pub const ATTR: &str = "x";

/// The second numeric attribute of [`SubWorkload::MultiAttr`].
pub const ATTR_Y: &str = "y";

/// The string attribute of [`SubWorkload::StrPrefix`].
pub const ATTR_TAG: &str = "tag";

/// [`ATTR_Y`] band stride of [`SubWorkload::MultiAttr`]: group `g`
/// ranges over `[g * Y_STRIDE, g * Y_STRIDE + Y_WIDTH]`, so the ten
/// bands are mutually disjoint with `Y_STRIDE - Y_WIDTH` gaps.
pub const Y_STRIDE: i64 = 600;

/// [`ATTR_Y`] band width of [`SubWorkload::MultiAttr`].
pub const Y_WIDTH: i64 = 400;

/// Maximum per-client shift; all structural margins exceed this, so
/// cross-group covering is shift-independent. Populations of up to
/// 10 × `MAX_SHIFT` clients get unique instances.
pub const MAX_SHIFT: i64 = 100;

/// The full attribute space advertised by workload publishers.
pub fn full_space_adv() -> Filter {
    Filter::builder().ge(ATTR, 0).le(ATTR, 100_000).build()
}

/// One of the paper's subscription workloads (Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubWorkload {
    /// Fig. 7(a): root group covers all nine others directly.
    Covered,
    /// Fig. 7(b): nested chain of groups.
    Chained,
    /// Fig. 7(c): root → three children → two leaves each.
    Tree,
    /// Fig. 7(d): no covering relationships.
    Distinct,
    /// Uniform mix of the four.
    Random,
    /// Disjoint `x` bands conjoined with per-group disjoint [`ATTR_Y`]
    /// bands: two-attribute subscriptions, no covering.
    MultiAttr,
    /// Disjoint `x` bands conjoined with a per-group string prefix on
    /// [`ATTR_TAG`]: mixed numeric/string subscriptions, no covering.
    StrPrefix,
}

impl SubWorkload {
    /// The four pure workloads, in the paper's Fig. 9 x-axis order.
    pub const SWEEP: [SubWorkload; 4] = [
        SubWorkload::Distinct,
        SubWorkload::Chained,
        SubWorkload::Tree,
        SubWorkload::Covered,
    ];

    /// The paper's Fig. 9 x-value: the maximum number of groups
    /// directly covered by one group.
    ///
    /// Returns `None` for [`SubWorkload::Random`].
    pub fn covering_degree(self) -> Option<u32> {
        match self {
            SubWorkload::Covered => Some(9),
            SubWorkload::Chained => Some(1),
            SubWorkload::Tree => Some(3),
            SubWorkload::Distinct | SubWorkload::MultiAttr | SubWorkload::StrPrefix => Some(0),
            SubWorkload::Random => None,
        }
    }

    /// The `(lo, hi)` base ranges of the ten groups, index 0 being the
    /// paper's subscription 1 (the root where one exists). All
    /// structural margins are > [`MAX_SHIFT`].
    pub fn group_ranges(self) -> Vec<(i64, i64)> {
        match self {
            SubWorkload::Covered => {
                let mut g = vec![(0, 10_000)];
                // Nine disjoint leaves strictly inside the root, with
                // ≥ 500 gaps.
                g.extend((1..=9).map(|i| (i * 1000, i * 1000 + 500)));
                g
            }
            // Nested chain with 200-margins on both sides, in its own
            // band so it never collides with the covered root.
            SubWorkload::Chained => (0..10)
                .map(|i| (30_000 + i * 200, 40_000 - i * 200))
                .collect(),
            SubWorkload::Tree => vec![
                (20_000, 29_000), // 1: root
                (20_200, 22_700), // 2
                (23_200, 25_700), // 3
                (26_200, 28_700), // 4
                (20_400, 21_400), // 5 (under 2)
                (21_700, 22_500), // 6 (under 2)
                (23_400, 24_400), // 7 (under 3)
                (24_700, 25_500), // 8 (under 3)
                (26_400, 27_400), // 9 (under 4)
                (27_700, 28_500), // 10 (under 4)
            ],
            SubWorkload::Distinct => (0..10)
                .map(|i| (50_000 + i * 2000, 50_000 + i * 2000 + 800))
                .collect(),
            // The two-attribute pools live in their own bands above
            // every Fig. 7 workload, same 2000-stride disjoint layout.
            SubWorkload::MultiAttr => (0..10)
                .map(|i| (70_000 + i * 1500, 70_000 + i * 1500 + 800))
                .collect(),
            SubWorkload::StrPrefix => (0..10)
                .map(|i| (86_000 + i * 1200, 86_000 + i * 1200 + 800))
                .collect(),
            SubWorkload::Random => {
                let mut pool = Vec::with_capacity(40);
                for w in SubWorkload::SWEEP {
                    pool.extend(w.group_ranges());
                }
                pool
            }
        }
    }

    /// The canonical (unshifted) filters of the ten groups.
    pub fn filters(self) -> Vec<Filter> {
        (0..self.group_ranges().len())
            .map(|g| self.instance(g, 0))
            .collect()
    }

    /// A client-specific instance of group `group`: the base range
    /// shifted by `shift` (0 ≤ shift ≤ [`MAX_SHIFT`]). Instances of a
    /// group with different shifts are mutually incomparable;
    /// cross-group covering matches the group structure for any shift
    /// pair.
    ///
    /// # Panics
    ///
    /// Panics if `group` ≥ 10 (40 for [`SubWorkload::Random`]) or
    /// `shift` > [`MAX_SHIFT`].
    pub fn instance(self, group: usize, shift: i64) -> Filter {
        assert!(shift <= MAX_SHIFT, "shift {shift} exceeds MAX_SHIFT");
        let (lo, hi) = self.group_ranges()[group];
        let b = Filter::builder().ge(ATTR, lo + shift).le(ATTR, hi + shift);
        match self {
            SubWorkload::MultiAttr => {
                let y = group as i64 * Y_STRIDE;
                b.ge(ATTR_Y, y).le(ATTR_Y, y + Y_WIDTH).build()
            }
            SubWorkload::StrPrefix => b.prefix(ATTR_TAG, &format!("g{group}")).build(),
            _ => b.build(),
        }
    }

    /// The subscription instance assigned to the `idx`-th client of a
    /// population: group `idx % 10`, shift `idx / 10` (so instances are
    /// unique for up to 1000 clients). [`SubWorkload::Random`] draws
    /// the group deterministically from its 40-group pool.
    pub fn assign(self, idx: usize) -> Filter {
        let shift = (idx / 10) as i64 % (MAX_SHIFT + 1);
        match self {
            SubWorkload::Random => {
                // SplitMix-style deterministic hash of the index.
                let mut z = (idx as u64).wrapping_add(0x9e3779b97f4a7c15);
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                let k = (z ^ (z >> 31)) as usize % 40;
                self.instance(k, shift)
            }
            _ => self.instance(idx % 10, shift),
        }
    }

    /// The index of the root (most-covering) group, if the workload
    /// has one.
    pub fn root_index(self) -> Option<usize> {
        match self {
            SubWorkload::Covered | SubWorkload::Chained | SubWorkload::Tree => Some(0),
            SubWorkload::Distinct
            | SubWorkload::Random
            | SubWorkload::MultiAttr
            | SubWorkload::StrPrefix => None,
        }
    }
}

impl fmt::Display for SubWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SubWorkload::Covered => "covered",
            SubWorkload::Chained => "chained",
            SubWorkload::Tree => "tree",
            SubWorkload::Distinct => "distinct",
            SubWorkload::Random => "random",
            SubWorkload::MultiAttr => "multiattr",
            SubWorkload::StrPrefix => "strprefix",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The direct-covering (Hasse) edges of a filter list: `(i, j)`
    /// when `i` covers `j` with no `k` strictly in between.
    fn hasse(filters: &[Filter]) -> Vec<(usize, usize)> {
        let n = filters.len();
        let covers = |a: usize, b: usize| {
            a != b && filters[a].covers(&filters[b]) && !filters[b].covers(&filters[a])
        };
        let mut edges = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if covers(i, j) {
                    let direct = !(0..n).any(|k| covers(i, k) && covers(k, j));
                    if direct {
                        edges.push((i, j));
                    }
                }
            }
        }
        edges
    }

    fn max_out_degree(edges: &[(usize, usize)]) -> usize {
        (0..10)
            .map(|i| edges.iter().filter(|(a, _)| *a == i).count())
            .max()
            .unwrap_or(0)
    }

    #[test]
    fn covered_structure() {
        let f = SubWorkload::Covered.filters();
        assert_eq!(f.len(), 10);
        let h = hasse(&f);
        assert_eq!(h.len(), 9);
        assert!(h.iter().all(|(a, _)| *a == 0), "all edges from the root");
        assert_eq!(max_out_degree(&h), 9);
        for i in 1..10 {
            for j in (i + 1)..10 {
                assert!(!f[i].overlaps(&f[j]), "leaves {i},{j} overlap");
            }
        }
    }

    #[test]
    fn chained_structure() {
        let f = SubWorkload::Chained.filters();
        let h = hasse(&f);
        let expected: Vec<(usize, usize)> = (0..9).map(|i| (i, i + 1)).collect();
        assert_eq!(h, expected);
        assert_eq!(max_out_degree(&h), 1);
    }

    #[test]
    fn tree_structure() {
        let f = SubWorkload::Tree.filters();
        let h = hasse(&f);
        let mut expected = vec![(0, 1), (0, 2), (0, 3)];
        expected.extend([(1, 4), (1, 5), (2, 6), (2, 7), (3, 8), (3, 9)]);
        let mut got = h.clone();
        got.sort_unstable();
        expected.sort_unstable();
        assert_eq!(got, expected);
        assert_eq!(max_out_degree(&h), 3);
    }

    #[test]
    fn distinct_structure() {
        let f = SubWorkload::Distinct.filters();
        assert!(hasse(&f).is_empty());
        for i in 0..10 {
            for j in (i + 1)..10 {
                assert!(!f[i].overlaps(&f[j]));
            }
        }
    }

    #[test]
    fn covering_degrees_match_fig9_axis() {
        for w in SubWorkload::SWEEP {
            let h = hasse(&w.filters());
            assert_eq!(
                max_out_degree(&h) as u32,
                w.covering_degree().unwrap(),
                "degree mismatch for {w}"
            );
        }
    }

    #[test]
    fn instances_of_one_group_are_incomparable() {
        for w in SubWorkload::SWEEP {
            for g in 0..10 {
                let a = w.instance(g, 0);
                let b = w.instance(g, 37);
                assert!(!a.covers(&b), "{w} group {g}: shift-0 covers shift-37");
                assert!(!b.covers(&a), "{w} group {g}: shift-37 covers shift-0");
                assert!(a.overlaps(&b));
            }
        }
    }

    #[test]
    fn cross_group_covering_is_shift_independent() {
        // Every group-level covering edge must hold between arbitrary
        // instances, and every non-edge must stay a non-edge.
        for w in [
            SubWorkload::Covered,
            SubWorkload::Chained,
            SubWorkload::Tree,
        ] {
            let base = w.filters();
            for i in 0..10 {
                for j in 0..10 {
                    if i == j {
                        continue;
                    }
                    let group_covers = base[i].covers(&base[j]);
                    for (sa, sb) in [(0, MAX_SHIFT), (MAX_SHIFT, 0), (13, 87)] {
                        let a = w.instance(i, sa);
                        let b = w.instance(j, sb);
                        assert_eq!(
                            a.covers(&b),
                            group_covers,
                            "{w}: instance covering ({i}@{sa} vs {j}@{sb}) diverges from groups"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn distinct_instances_stay_disjoint() {
        let w = SubWorkload::Distinct;
        for i in 0..10 {
            for j in 0..10 {
                if i != j {
                    assert!(!w.instance(i, MAX_SHIFT).overlaps(&w.instance(j, 0)));
                }
            }
        }
    }

    #[test]
    fn all_subscriptions_inside_advertised_space() {
        let adv = full_space_adv();
        for w in SubWorkload::SWEEP {
            for g in 0..10 {
                assert!(
                    adv.overlaps(&w.instance(g, MAX_SHIFT)),
                    "{w} group {g} outside advertised space"
                );
            }
        }
    }

    #[test]
    fn multiattr_pool_is_disjoint_two_attribute() {
        use transmob_pubsub::Publication;
        let w = SubWorkload::MultiAttr;
        let f = w.filters();
        assert!(hasse(&f).is_empty(), "multiattr groups must not cover");
        for (g, filter) in f.iter().enumerate() {
            let (lo, _) = w.group_ranges()[g];
            let y = g as i64 * Y_STRIDE;
            let inside = Publication::new().with(ATTR, lo).with(ATTR_Y, y + 100);
            let wrong_y = Publication::new()
                .with(ATTR, lo)
                .with(ATTR_Y, y + Y_WIDTH + 1);
            let no_y = Publication::new().with(ATTR, lo);
            assert!(filter.matches(&inside), "group {g} misses its own band");
            assert!(!filter.matches(&wrong_y), "group {g} ignores {ATTR_Y}");
            assert!(!filter.matches(&no_y), "group {g} matches without {ATTR_Y}");
        }
    }

    #[test]
    fn strprefix_pool_keys_on_tag_prefix() {
        use transmob_pubsub::Publication;
        let w = SubWorkload::StrPrefix;
        let f = w.filters();
        assert!(hasse(&f).is_empty(), "strprefix groups must not cover");
        for (g, filter) in f.iter().enumerate() {
            let (lo, _) = w.group_ranges()[g];
            let tagged = Publication::new()
                .with(ATTR, lo)
                .with(ATTR_TAG, format!("g{g}-extra"));
            let wrong_tag = Publication::new()
                .with(ATTR, lo)
                .with(ATTR_TAG, format!("h{g}"));
            assert!(filter.matches(&tagged), "group {g} misses its own tag");
            assert!(!filter.matches(&wrong_tag), "group {g} ignores the tag");
        }
    }

    #[test]
    fn new_pools_keep_instance_semantics() {
        for w in [SubWorkload::MultiAttr, SubWorkload::StrPrefix] {
            // Same-group instances stay incomparable under shift…
            let a = w.instance(3, 0);
            let b = w.instance(3, 37);
            assert!(
                !a.covers(&b) && !b.covers(&a),
                "{w}: shifted instances comparable"
            );
            assert!(a.overlaps(&b));
            // …and assignment is deterministic and unique.
            let set: std::collections::BTreeSet<String> =
                (0..200).map(|i| format!("{}", w.assign(i))).collect();
            assert_eq!(set.len(), 200, "{w}: assignment collides");
        }
    }

    #[test]
    fn assignment_is_unique_and_deterministic() {
        let w = SubWorkload::Covered;
        assert_eq!(w.assign(0), w.instance(0, 0));
        assert_eq!(w.assign(13), w.instance(3, 1));
        // 400 clients ⇒ 400 distinct instances.
        let set: std::collections::BTreeSet<String> =
            (0..400).map(|i| format!("{}", w.assign(i))).collect();
        assert_eq!(set.len(), 400);
        let r = SubWorkload::Random;
        assert_eq!(r.assign(5), r.assign(5));
    }
}
