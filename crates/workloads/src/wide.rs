//! A wide-attribute workload for the sharded parallel matching stage.
//!
//! The paper's Fig. 7 workloads concentrate on one or two attributes,
//! which is the right shape for covering structure but the *wrong*
//! shape for exercising attribute sharding: with two attributes at
//! most two shards ever hold rows. This module spreads subscriptions
//! over [`WIDE_ATTRS`] numeric attributes so a sharded
//! `MatchIndex` has real work in every partition, and tunes the
//! selectivities so a publication produces many constraint hits but
//! few full matches — the regime where per-hit merge cost dominates
//! and the parallel stage's dense countdown pays off.
//!
//! Every generator is a pure function of its index arguments, so
//! benches and differential tests reproduce byte-identical tables.

use transmob_pubsub::{Filter, Publication};

/// The attribute universe subscriptions draw from.
pub const WIDE_ATTRS: [&str; 12] = [
    "k00", "k01", "k02", "k03", "k04", "k05", "k06", "k07", "k08", "k09", "k10", "k11",
];

/// Attribute value space: `[0, SPACE)`.
pub const SPACE: i64 = 100_000;

/// Width of each subscription's acceptance band per attribute (20% of
/// the space, so a random publication satisfies a given band with
/// probability ≈ 0.20 and a two-band subscription with ≈ 0.04).
pub const BAND: i64 = 20_000;

/// Splitmix64: the deterministic pseudo-random stream behind the
/// generators.
fn mix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The `idx`-th wide subscription filter: a two-attribute conjunction
/// of interval bands on distinct attributes, attributes and band
/// positions drawn deterministically from `idx`.
pub fn wide_sub_filter(idx: usize) -> Filter {
    let h = mix(idx as u64);
    let a = (idx % WIDE_ATTRS.len()) as u64;
    // A second attribute distinct from the first.
    let b = (a + 1 + (h >> 8) % (WIDE_ATTRS.len() as u64 - 1)) % WIDE_ATTRS.len() as u64;
    let lo_a = (h % (SPACE - BAND) as u64) as i64;
    let lo_b = (mix(h) % (SPACE - BAND) as u64) as i64;
    Filter::builder()
        .ge(WIDE_ATTRS[a as usize], lo_a)
        .le(WIDE_ATTRS[a as usize], lo_a + BAND)
        .ge(WIDE_ATTRS[b as usize], lo_b)
        .le(WIDE_ATTRS[b as usize], lo_b + BAND)
        .build()
}

/// The `i`-th wide publication: one value on every attribute of the
/// universe, spread deterministically over the space.
pub fn wide_publication(i: usize) -> Publication {
    let mut p = Publication::new();
    for (j, attr) in WIDE_ATTRS.iter().enumerate() {
        let v = (mix((i as u64) << 8 | j as u64) % SPACE as u64) as i64;
        p.set(*attr, v);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(wide_sub_filter(7), wide_sub_filter(7));
        assert_eq!(wide_publication(7), wide_publication(7));
    }

    #[test]
    fn subscriptions_constrain_two_distinct_attributes() {
        for idx in 0..100 {
            let f = wide_sub_filter(idx);
            assert_eq!(f.arity(), 2, "sub {idx} must conjoin two attributes");
            assert!(f.is_satisfiable());
        }
    }

    #[test]
    fn selectivity_is_in_the_target_regime() {
        // With 1k subs and 64 pubs, per-publication band hits should
        // be plentiful while full matches stay rare; this pins the
        // hits ≫ matches shape the parallel merge is designed for.
        let filters: Vec<Filter> = (0..1000).map(wide_sub_filter).collect();
        let mut hits = 0usize;
        let mut matches = 0usize;
        for i in 0..64 {
            let p = wide_publication(i);
            for f in &filters {
                if f.matches(&p) {
                    matches += 1;
                }
                hits += f
                    .constraints()
                    .filter(|(attr, c)| p.get(attr).is_some_and(|v| c.satisfied_by(v)))
                    .count();
            }
        }
        assert!(hits > 10 * matches, "hits {hits} vs matches {matches}");
        assert!(matches > 0, "workload must produce some matches");
    }
}
