//! The paper's overlay topologies.
//!
//! [`default_14`] is the 14-broker overlay of the paper's Fig. 6, used
//! by every experiment unless stated otherwise. [`grown`] produces the
//! Fig. 13 series: larger overlays that keep the source–target path
//! length constant by growing away from the movement path.

use transmob_broker::Topology;
use transmob_pubsub::BrokerId;

fn b(i: u32) -> BrokerId {
    BrokerId(i)
}

/// The default 14-broker topology of the paper's Fig. 6.
///
/// The figure draws a tree: a backbone `1–3–4–5/9` fanning out to the
/// leaf groups `{2}`, `{6,7}`, `{10,11}`, `{8,12}`, `{13,14}`. The
/// exact drawing is reproduced as:
///
/// ```text
///        6   7      10  11
///         \ /        \ /
///    5 ----+          9
///    |                |
/// 1--3----4-----------8-----12
/// |                    \      \
/// 2                     13     14
/// ```
///
/// with client-hosting experiments using brokers 1, 2, 13 and 14 as
/// the movement endpoints (so the 1↔13 and 2↔14 paths share the
/// backbone).
pub fn default_14() -> Topology {
    let brokers: Vec<BrokerId> = (1..=14).map(b).collect();
    let edges = vec![
        (b(1), b(2)),
        (b(1), b(3)),
        (b(3), b(4)),
        (b(3), b(5)),
        (b(5), b(6)),
        (b(5), b(7)),
        (b(4), b(8)),
        (b(8), b(9)),
        (b(9), b(10)),
        (b(9), b(11)),
        (b(8), b(12)),
        (b(8), b(13)),
        (b(12), b(14)),
    ];
    Topology::from_edges(brokers, edges).expect("default topology is a valid tree")
}

/// The Fig. 13 growing topologies: `n` brokers (n ≥ 14), built from
/// [`default_14`] by attaching extra brokers to the periphery (broker
/// 5's subtree), so the 1↔13 and 2↔14 movement paths keep their
/// length.
///
/// # Panics
///
/// Panics if `n < 14`.
pub fn grown(n: u32) -> Topology {
    assert!(n >= 14, "grown topologies start at 14 brokers");
    let base = default_14();
    let mut brokers: Vec<BrokerId> = base.brokers().collect();
    let mut edges = base.edges();
    for i in 15..=n {
        // Chain the extra brokers off broker 6, away from both
        // movement paths.
        let parent = if i == 15 { b(6) } else { b(i - 1) };
        brokers.push(b(i));
        edges.push((parent, b(i)));
    }
    Topology::from_edges(brokers, edges).expect("grown topology is a valid tree")
}

/// A balanced binary tree with `depth` levels (2^depth − 1 brokers),
/// ids assigned in breadth-first order starting at 1.
pub fn balanced_binary(depth: u32) -> Topology {
    assert!(depth >= 1);
    let n = (1u32 << depth) - 1;
    let brokers: Vec<BrokerId> = (1..=n).map(b).collect();
    let edges: Vec<_> = (2..=n).map(|i| (b(i / 2), b(i))).collect();
    Topology::from_edges(brokers, edges).expect("balanced tree is valid")
}

/// A deterministic pseudo-random tree over `n` brokers: broker `i`
/// attaches to a parent drawn from `1..i` by a simple LCG on `seed`.
pub fn random_tree(n: u32, seed: u64) -> Topology {
    assert!(n >= 1);
    let brokers: Vec<BrokerId> = (1..=n).map(b).collect();
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut edges = Vec::new();
    for i in 2..=n {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let parent = 1 + (state >> 33) as u32 % (i - 1);
        edges.push((b(parent), b(i)));
    }
    Topology::from_edges(brokers, edges).expect("random tree is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_topology_shape() {
        let t = default_14();
        assert_eq!(t.len(), 14);
        assert_eq!(t.edges().len(), 13);
        // The experiment paths exist and share the backbone.
        let p1 = t.route(b(1), b(13)).unwrap();
        let p2 = t.route(b(2), b(14)).unwrap();
        assert!(p1.hops() >= 3);
        assert!(p2.hops() >= 4);
        assert!(p1.contains(b(8)) && p2.contains(b(8)), "paths share B8");
    }

    #[test]
    fn grown_preserves_movement_paths() {
        let base = default_14();
        for n in [14, 18, 22, 26] {
            let t = grown(n);
            assert_eq!(t.len(), n as usize);
            assert_eq!(
                t.route(b(1), b(13)).unwrap().hops(),
                base.route(b(1), b(13)).unwrap().hops(),
                "path 1-13 length changed at n={n}"
            );
            assert_eq!(
                t.route(b(2), b(14)).unwrap().hops(),
                base.route(b(2), b(14)).unwrap().hops(),
                "path 2-14 length changed at n={n}"
            );
        }
    }

    #[test]
    fn balanced_binary_shape() {
        let t = balanced_binary(4);
        assert_eq!(t.len(), 15);
        assert_eq!(t.neighbors(b(1)).len(), 2);
        assert_eq!(t.neighbors(b(15)).len(), 1);
    }

    #[test]
    fn random_tree_valid_and_deterministic() {
        let a = random_tree(20, 5);
        let c = random_tree(20, 5);
        let d = random_tree(20, 6);
        assert_eq!(a, c);
        assert_ne!(a, d);
        assert_eq!(a.len(), 20);
    }
}
