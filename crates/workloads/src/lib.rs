//! # transmob-workloads
//!
//! The experiment *inputs* of the transmob reproduction of
//! *"Transactional Mobility in Distributed Content-Based
//! Publish/Subscribe Systems"* (ICDCS 2009): the paper's Fig. 6
//! overlay topology (and the Fig. 13 grown variants), the Fig. 7
//! subscription workloads with their exact covering structure, and the
//! client populations / movement patterns of the Sec. 5 experiments.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod population;
pub mod subscriptions;
pub mod topology;
pub mod wide;

pub use population::{
    incremental_movers, mixed_population, paper_default, paper_default_between, with_movers,
    ClientSpec,
};
pub use subscriptions::{full_space_adv, SubWorkload, ATTR, ATTR_TAG, ATTR_Y, Y_STRIDE, Y_WIDTH};
pub use topology::{balanced_binary, default_14, grown, random_tree};
pub use wide::{wide_publication, wide_sub_filter, WIDE_ATTRS};
