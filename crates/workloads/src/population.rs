//! Client populations and movement patterns for the paper's
//! experiments.
//!
//! The default experiment (Sec. 5, "Subscription Workload") places
//! clients at Brokers 1 and 2 — odd-numbered Fig. 7 subscriptions at
//! Broker 1, even-numbered at Broker 2 — and ping-pongs them between
//! Brokers 1↔13 and 2↔14 with a ten-second pause. [`ClientSpec`]
//! captures that setup declaratively so the simulator harness and the
//! threaded runtime can both instantiate it.

use transmob_pubsub::{BrokerId, ClientId, Filter};

use crate::subscriptions::SubWorkload;

/// One client of an experiment population.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientSpec {
    /// The client id.
    pub id: ClientId,
    /// The broker the client starts at.
    pub start: BrokerId,
    /// The client's subscription (a client-unique instance of a
    /// workload group).
    pub subscription: Filter,
    /// The workload the subscription was drawn from.
    pub workload: SubWorkload,
    /// Index of the Fig. 7 subscription group assigned (0-based), for
    /// root-selection.
    pub sub_index: usize,
    /// The ping-pong destinations (empty = stationary).
    pub route: Vec<BrokerId>,
}

impl ClientSpec {
    /// Whether this client moves.
    pub fn is_mobile(&self) -> bool {
        !self.route.is_empty()
    }
}

/// The default paper population: `n` subscriber clients split between
/// Brokers 1 and 2 (odd Fig. 7 subscriptions at B1, even at B2),
/// ping-ponging 1↔13 and 2↔14 respectively.
///
/// Client ids start at 1000 to keep them distinct from publisher ids.
pub fn paper_default(n: usize, workload: SubWorkload) -> Vec<ClientSpec> {
    paper_default_between(
        n,
        workload,
        (BrokerId(1), BrokerId(13)),
        (BrokerId(2), BrokerId(14)),
    )
}

/// Like [`paper_default`] but with explicit broker pairs (the Fig. 13
/// topology-size experiment moves between 1↔12 and 2↔14).
pub fn paper_default_between(
    n: usize,
    workload: SubWorkload,
    odd_pair: (BrokerId, BrokerId),
    even_pair: (BrokerId, BrokerId),
) -> Vec<ClientSpec> {
    (0..n)
        .map(|i| {
            let sub_index = i % 10;
            // Paper: odd-numbered subscriptions (1,3,..; 0-based even
            // indices) start at Broker 1, even-numbered at Broker 2.
            let (start, far) = if sub_index % 2 == 0 {
                odd_pair
            } else {
                even_pair
            };
            ClientSpec {
                id: ClientId(1000 + i as u64),
                start,
                subscription: workload.assign(i),
                workload,
                sub_index,
                route: vec![far, start],
            }
        })
        .collect()
}

/// A population where only some clients move: the first `movers`
/// clients keep the default ping-pong route, the rest are stationary
/// (the Fig. 12 incremental-movement experiment chooses *which* ones
/// move via [`incremental_movers`]).
pub fn with_movers(mut specs: Vec<ClientSpec>, movers: &[ClientId]) -> Vec<ClientSpec> {
    for s in &mut specs {
        if !movers.contains(&s.id) {
            s.route.clear();
        }
    }
    specs
}

/// The Fig. 12 incremental-movement staging: each increment of ten
/// moving clients is chosen as (in order) ten covered-workload roots,
/// ten tree roots, ten chained roots, ten covered (leaf) subscriptions
/// picked from the previous three workloads, and ten distinct-workload
/// subscriptions.
///
/// `specs` must be a mixed population built with
/// [`mixed_population`]; returns the ids of the first `k` movers
/// (k ≤ 60) in staging order.
pub fn incremental_movers(specs: &[ClientSpec], k: usize) -> Vec<ClientId> {
    let by_kind = |kind: SubWorkload, want_root: bool| {
        specs
            .iter()
            .filter(move |s| s.workload == kind && ((s.sub_index == 0) == want_root))
            .map(|s| s.id)
    };
    let mut order: Vec<ClientId> = Vec::new();
    fn take(order: &mut Vec<ClientId>, iter: &mut dyn Iterator<Item = ClientId>, n: usize) {
        let mut added = 0;
        for id in iter {
            if added == n {
                break;
            }
            if !order.contains(&id) {
                order.push(id);
                added += 1;
            }
        }
    }
    take(&mut order, &mut by_kind(SubWorkload::Covered, true), 10);
    take(&mut order, &mut by_kind(SubWorkload::Tree, true), 10);
    take(&mut order, &mut by_kind(SubWorkload::Chained, true), 10);
    // Ten covered (non-root) picks from the previous three workloads.
    let mut leaves = specs
        .iter()
        .filter(|s| {
            s.sub_index > 0
                && matches!(
                    s.workload,
                    SubWorkload::Covered | SubWorkload::Tree | SubWorkload::Chained
                )
        })
        .map(|s| s.id);
    take(&mut order, &mut leaves, 10);
    // Two helpings of distinct for the 40..60 stages.
    let mut distinct = by_kind(SubWorkload::Distinct, false);
    take(&mut order, &mut distinct, 20);
    order.truncate(k);
    order
}

/// A mixed population drawing subscriptions uniformly from all four
/// pure workloads (the paper's Fig. 12 base population).
pub fn mixed_population(n: usize) -> Vec<ClientSpec> {
    (0..n)
        .map(|i| {
            let kind = SubWorkload::SWEEP[i % 4];
            let sub_index = (i / 4) % 10;
            let shift = (i / 40) as i64 % (crate::subscriptions::MAX_SHIFT + 1);
            let (start, far) = if sub_index % 2 == 0 {
                (BrokerId(1), BrokerId(13))
            } else {
                (BrokerId(2), BrokerId(14))
            };
            ClientSpec {
                id: ClientId(1000 + i as u64),
                start,
                subscription: kind.instance(sub_index, shift),
                workload: kind,
                sub_index,
                route: vec![far, start],
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_split_and_routes() {
        let specs = paper_default(40, SubWorkload::Covered);
        assert_eq!(specs.len(), 40);
        let at_b1 = specs.iter().filter(|s| s.start == BrokerId(1)).count();
        let at_b2 = specs.iter().filter(|s| s.start == BrokerId(2)).count();
        assert_eq!(at_b1, 20);
        assert_eq!(at_b2, 20);
        for s in &specs {
            assert!(s.is_mobile());
            if s.start == BrokerId(1) {
                assert_eq!(s.route, vec![BrokerId(13), BrokerId(1)]);
            } else {
                assert_eq!(s.route, vec![BrokerId(14), BrokerId(2)]);
            }
        }
        // Ids unique.
        let ids: std::collections::BTreeSet<_> = specs.iter().map(|s| s.id).collect();
        assert_eq!(ids.len(), 40);
    }

    #[test]
    fn with_movers_freezes_the_rest() {
        let specs = paper_default(20, SubWorkload::Tree);
        let movers = vec![specs[0].id, specs[5].id];
        let specs = with_movers(specs, &movers);
        assert_eq!(specs.iter().filter(|s| s.is_mobile()).count(), 2);
    }

    #[test]
    fn incremental_staging_orders_by_covering() {
        let specs = mixed_population(400);
        let order = incremental_movers(&specs, 60);
        assert_eq!(order.len(), 60);
        // First ten are covered-workload roots.
        for id in &order[..10] {
            let s = specs.iter().find(|s| s.id == *id).unwrap();
            assert_eq!(s.workload, SubWorkload::Covered);
            assert_eq!(s.sub_index, 0);
        }
        // Next ten are tree roots.
        for id in &order[10..20] {
            let s = specs.iter().find(|s| s.id == *id).unwrap();
            assert_eq!(s.workload, SubWorkload::Tree);
            assert_eq!(s.sub_index, 0);
        }
        // Stages five and six are distinct-workload subscriptions.
        for id in &order[40..60] {
            let s = specs.iter().find(|s| s.id == *id).unwrap();
            assert_eq!(s.workload, SubWorkload::Distinct);
        }
        // No duplicates.
        let set: std::collections::BTreeSet<_> = order.iter().collect();
        assert_eq!(set.len(), 60);
    }

    #[test]
    fn mixed_population_draws_all_workloads() {
        let specs = mixed_population(40);
        for w in SubWorkload::SWEEP {
            assert!(specs.iter().any(|s| s.workload == w), "missing {w}");
        }
        // Instances are unique across the population.
        let set: std::collections::BTreeSet<String> = specs
            .iter()
            .map(|s| format!("{}", s.subscription))
            .collect();
        assert_eq!(set.len(), 40);
    }
}
